// Tests for the bump arena behind pipeline_context — checkpoint/rewind
// discipline, cross-type reuse, geometric growth, accounting, and parallel
// first-touch priming (under schedule fuzzing).
#include "core/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "scheduler/sched_fuzz.h"
#include "workloads/record.h"

namespace parsemi {
namespace {

TEST(Arena, CheckpointRewindReusesAddresses) {
  arena a;
  auto base = a.mark();
  uint64_t* p1 = a.alloc<uint64_t>(100);
  p1[99] = 42;
  a.rewind(base);
  uint64_t* p2 = a.alloc<uint64_t>(100);
  EXPECT_EQ(p2, p1);  // same bump position after rewind
  // Nested scopes rewind to their own mark, not the base.
  uint64_t* q1 = a.alloc<uint64_t>(10);
  {
    arena_scope scope(a);
    uint64_t* inner = a.alloc<uint64_t>(50);
    EXPECT_NE(inner, q1);
  }
  uint64_t* q2 = a.alloc<uint64_t>(10);
  EXPECT_NE(q2, q1);  // q1 still live: allocated before the scope
  a.rewind(base);
  EXPECT_EQ(a.live_bytes(), 0u);
}

TEST(Arena, CrossTypeReuseAtSameAddress) {
  // The semisort's attempt loop reuses one arena across record types and
  // phases; after a rewind, a differently-typed request of the same size
  // must land on the same bytes (no per-type pools).
  arena a;
  auto base = a.mark();
  uint64_t* words = a.alloc<uint64_t>(64);
  for (int i = 0; i < 64; ++i) words[i] = ~uint64_t{0};
  a.rewind(base);
  record* recs = a.alloc<record>(32);
  EXPECT_EQ(reinterpret_cast<void*>(recs), reinterpret_cast<void*>(words));
  recs[31] = {7, 8};
  EXPECT_EQ(recs[31].key, 7u);
}

TEST(Arena, GrowthIsGeometricAndPointerStable) {
  arena a;
  std::vector<uint64_t*> ptrs;
  std::vector<size_t> sizes;
  size_t count = 16;
  for (int i = 0; i < 60; ++i) {
    uint64_t* p = a.alloc<uint64_t>(count);
    p[0] = static_cast<uint64_t>(i);      // touch
    p[count - 1] = static_cast<uint64_t>(i);
    ptrs.push_back(p);
    sizes.push_back(count);
    count += count / 8 + 1;
  }
  // 60 live allocations with sizes growing ~12.5% per call: block count
  // stays logarithmic because each heap block at least doubles capacity.
  EXPECT_LE(a.heap_block_count(), 30u);
  EXPECT_EQ(a.alloc_count(), 60u);
  // Growth never moved earlier allocations.
  for (size_t i = 0; i < ptrs.size(); ++i) {
    EXPECT_EQ(ptrs[i][0], static_cast<uint64_t>(i)) << i;
    EXPECT_EQ(ptrs[i][sizes[i] - 1], static_cast<uint64_t>(i)) << i;
  }
}

TEST(Arena, SteadyStateNeedsNoNewBlocks) {
  arena a;
  auto base = a.mark();
  for (int round = 0; round < 3; ++round) {
    a.alloc<uint64_t>(1000);
    a.alloc<uint32_t>(500);
    a.alloc<record>(800);
    a.rewind(base);
  }
  size_t warm_blocks = a.heap_block_count();
  for (int round = 0; round < 10; ++round) {
    a.alloc<uint64_t>(1000);
    a.alloc<uint32_t>(500);
    a.alloc<record>(800);
    a.rewind(base);
  }
  EXPECT_EQ(a.heap_block_count(), warm_blocks);  // zero heap traffic
}

TEST(Arena, HighWaterAndLiveAccounting) {
  arena a;
  EXPECT_EQ(a.live_bytes(), 0u);
  auto base = a.mark();
  a.alloc<uint64_t>(100);  // 800 bytes
  a.alloc<uint64_t>(50);   // 400 bytes
  EXPECT_EQ(a.live_bytes(), 1200u);
  EXPECT_GE(a.high_water_bytes(), 1200u);
  a.rewind(base);
  EXPECT_EQ(a.live_bytes(), 0u);
  EXPECT_GE(a.high_water_bytes(), 1200u);  // high water survives rewind
  a.reset_high_water();
  EXPECT_EQ(a.high_water_bytes(), 0u);
  a.alloc<uint64_t>(10);
  EXPECT_EQ(a.high_water_bytes(), 80u);
  a.release();
  EXPECT_EQ(a.capacity_bytes(), 0u);
  EXPECT_EQ(a.live_bytes(), 0u);
}

TEST(Arena, RewindAcrossBlockBoundary) {
  // Allocate enough to span several blocks, checkpoint mid-way, then
  // rewind: later blocks must be emptied, the checkpointed block restored.
  arena a;
  a.alloc<uint64_t>(100);
  auto mid = a.mark();
  size_t live_at_mid = a.live_bytes();
  for (int i = 0; i < 20; ++i) a.alloc<uint64_t>(500);  // forces growth
  EXPECT_GT(a.heap_block_count(), 1u);
  a.rewind(mid);
  EXPECT_EQ(a.live_bytes(), live_at_mid);
  // The next allocation resumes from the checkpoint position.
  uint64_t* p = a.alloc<uint64_t>(1);
  a.rewind(mid);
  EXPECT_EQ(a.alloc<uint64_t>(1), p);
}

TEST(Arena, ParallelPrimingUnderScheduleFuzz) {
  // A fresh block at/above kPrimeThreshold is first-touch primed by a
  // parallel_for; fuzz the schedule to shake out ordering assumptions in
  // the priming loop, then verify the block is fully usable.
  sched_fuzz::scoped_enable fuzz(0xA11CEu);
  arena a(/*prime_pages=*/true);
  size_t n = (arena::kPrimeThreshold / sizeof(uint64_t)) + 1024;
  uint64_t* p = a.alloc<uint64_t>(n);
  ASSERT_NE(p, nullptr);
  // Write/read across the whole block, including page boundaries.
  for (size_t i = 0; i < n; i += 511) p[i] = i;
  for (size_t i = 0; i < n; i += 511) ASSERT_EQ(p[i], i);
  // Priming must not have counted as bump allocations.
  EXPECT_EQ(a.alloc_count(), 1u);
}

TEST(Arena, ExactFitBlocksKeepGeometricGrowthContract) {
  // Blocks are exact-fit (never page-rounded): a request slightly above
  // current capacity must trigger real geometric growth ("capacity grows
  // >= 1.5x or not at all").
  arena a;
  a.alloc<uint64_t>(100);
  EXPECT_EQ(a.capacity_bytes(), 800u);
  a.reset();
  a.alloc<uint64_t>(101);
  EXPECT_GE(a.capacity_bytes(), 800u + 400u);
}

}  // namespace
}  // namespace parsemi
