// Empirical checks of the paper's analytical claims on the running
// implementation (complementing estimator_test's checks of f itself):
//   * Corollary 3.4 — with the default constants, bucket overflow is so
//     unlikely that restarts never occur in practice;
//   * Lemma 3.5 — total allocated bucket space is Θ(n) with a small
//     constant, across distribution shapes;
//   * the heavy/light classification matches its expectation: keys with
//     multiplicity well above δ/p are (almost) always classified heavy,
//     keys well below (almost) never.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/rng.h"

#include "core/semisort.h"
#include "test_helpers.h"
#include "workloads/distributions.h"

namespace parsemi {
namespace {

semisort_stats run_with_stats(const std::vector<record>& in, uint64_t seed) {
  semisort_stats stats;
  semisort_params params;
  params.seed = seed;
  params.stats = &stats;
  std::vector<record> out(in.size());
  semisort_hashed(std::span<const record>(in), std::span<record>(out),
                  record_key{}, params);
  return stats;
}

TEST(Theory, Corollary34NoRestartsAtDefaultParameters) {
  // Overflow probability ≤ Θ(n^{1-c}/log²n) with c = 1.25 and α = 1.1 on
  // top; across 3 distribution classes × 10 seeds we expect zero restarts.
  for (auto spec : {distribution_spec{distribution_kind::uniform, 1u << 28},
                    distribution_spec{distribution_kind::exponential, 150},
                    distribution_spec{distribution_kind::zipfian, 30000}}) {
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      auto in = generate_records(120000, spec, seed);
      auto stats = run_with_stats(in, seed * 7919);
      ASSERT_EQ(stats.restarts, 0)
          << spec.name() << "(" << spec.parameter << ") seed " << seed;
    }
  }
}

TEST(Theory, SampleSizeIsExactlyFloorNP) {
  for (size_t n : {100000ul, 123457ul}) {
    auto in = generate_records(n, {distribution_kind::uniform, 1000}, 1);
    auto stats = run_with_stats(in, 5);
    EXPECT_EQ(stats.sample_size, static_cast<size_t>(static_cast<double>(n) / 16.0)) << n;
  }
}

TEST(Theory, Lemma35SpaceIsLinearWithSmallConstant) {
  // Σ α·f(s_i) ≤ O(n): measured slots/record stays below a small constant
  // on every distribution shape, including the threshold-straddling worst
  // case and the all-distinct case where the additive term dominates.
  std::vector<distribution_spec> specs = {
      {distribution_kind::uniform, 1u << 30},   // all light
      {distribution_kind::uniform, 10},         // all heavy
      {distribution_kind::uniform, 500},        // near threshold (n/N=256ish)
      {distribution_kind::exponential, 128},
      {distribution_kind::zipfian, 128000},
  };
  for (auto spec : specs) {
    auto in = generate_records(128000, spec, 3);
    auto stats = run_with_stats(in, 11);
    EXPECT_LT(stats.slots_per_record(), 6.0)
        << spec.name() << "(" << spec.parameter << ")";
    EXPECT_GE(stats.slots_per_record(), 1.0);
  }
}

TEST(Theory, HeavyClassificationTracksMultiplicity) {
  constexpr size_t kN = 256 * 1024;  // δ/p = 256 is the expected threshold
  // Multiplicity 4096 = 16·(δ/p): essentially every record heavy.
  {
    std::vector<record> in(kN);
    for (size_t i = 0; i < kN; ++i) in[i] = {hash64(i / 4096), i};
    auto stats = run_with_stats(in, 21);
    EXPECT_GT(stats.heavy_fraction(), 0.999);
  }
  // Multiplicity 16 = (δ/p)/16: essentially no record heavy.
  {
    std::vector<record> in(kN);
    for (size_t i = 0; i < kN; ++i) in[i] = {hash64(i / 16), i};
    auto stats = run_with_stats(in, 22);
    EXPECT_LT(stats.heavy_fraction(), 0.001);
  }
  // Multiplicity exactly at the threshold: classification is genuinely
  // probabilistic — both classes must be populated. The records must be
  // SHUFFLED: with key j on the contiguous block [256j, 256j+256), the
  // strided sampler would hit every key exactly δ times deterministically
  // (each block tiles 16 whole strides) and classify everything heavy —
  // an instructive interaction between the §4 sampling scheme and block-
  // structured inputs.
  {
    std::vector<record> in(kN);
    for (size_t i = 0; i < kN; ++i) in[i] = {hash64(i / 256), i};
    rng shuffle_rng(99);
    for (size_t i = kN - 1; i > 0; --i)
      std::swap(in[i], in[shuffle_rng.next_below(i + 1)]);
    auto stats = run_with_stats(in, 23);
    EXPECT_GT(stats.heavy_fraction(), 0.05);
    EXPECT_LT(stats.heavy_fraction(), 0.95);
  }
}

TEST(Theory, HeavyKeyCountMatchesSampleMath) {
  // uniform(N) with n/N = 1024 expected multiplicity ⇒ every key should be
  // heavy and the number of heavy keys ≈ N.
  constexpr size_t kN = 1 << 20;
  constexpr uint64_t kDistinct = kN / 1024;
  auto in = generate_records(kN, {distribution_kind::uniform, kDistinct}, 9);
  auto stats = run_with_stats(in, 31);
  EXPECT_NEAR(static_cast<double>(stats.num_heavy_keys),
              static_cast<double>(kDistinct),
              0.02 * static_cast<double>(kDistinct));
}

}  // namespace
}  // namespace parsemi
