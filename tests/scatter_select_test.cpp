// Tier-1 tests for the adaptive scatter-path selection (core/scatter.h):
// canned (n, bucket count, record size) corners of the heuristic, the
// params override, the PARSEMI_SCATTER_PATH environment override — all
// asserted both directly against choose_scatter_path and end-to-end through
// semisort_stats::scatter_path_used — and the per-path telemetry contract
// (probe histogram only on CAS, flush counters only on buffered).
#include "core/scatter.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/semisort.h"
#include "test_helpers.h"
#include "workloads/distributions.h"

namespace parsemi {
namespace {

// RAII environment override: PARSEMI_SCATTER_PATH is process-global, so
// every test that sets it must restore the unset state even on failure.
class scoped_env {
 public:
  scoped_env(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~scoped_env() { ::unsetenv(name_); }

 private:
  const char* name_;
};

using strategy = semisort_params::scatter_strategy;

TEST(ScatterSelect, HeuristicCorners) {
  semisort_params p;  // adaptive, linear probing
  // The default pipeline shape at n = 10^7: few thousand buckets, 16-byte
  // records — blocked.
  EXPECT_EQ(choose_scatter_path(10'000'000, 6500, 16, p),
            scatter_path::blocked);
  // Large records read twice hurt the blocked path — buffered.
  EXPECT_EQ(choose_scatter_path(10'000'000, 6500, 128, p),
            scatter_path::buffered);
  // Too few records per bucket for two counting passes — buffered.
  EXPECT_EQ(choose_scatter_path(100'000, 10'000, 16, p),
            scatter_path::buffered);
  // Bucket count past both paths' limits — CAS.
  EXPECT_EQ(choose_scatter_path(10'000'000, 40'000, 16, p), scatter_path::cas);
  // Small inputs never leave the CAS baseline.
  EXPECT_EQ(choose_scatter_path(10'000, 100, 16, p), scatter_path::cas);
}

TEST(ScatterSelect, RandomProbingPinsCas) {
  semisort_params p;
  p.probing = semisort_params::probe_strategy::random;
  EXPECT_EQ(choose_scatter_path(10'000'000, 6500, 16, p), scatter_path::cas);
}

TEST(ScatterSelect, ParamsOverrideBeatsHeuristic) {
  semisort_params p;
  p.scatter_with = strategy::buffered;
  EXPECT_EQ(choose_scatter_path(10'000, 100, 16, p), scatter_path::buffered);
  p.scatter_with = strategy::blocked;
  EXPECT_EQ(choose_scatter_path(10'000, 100, 16, p), scatter_path::blocked);
  p.scatter_with = strategy::cas;
  EXPECT_EQ(choose_scatter_path(10'000'000, 6500, 16, p), scatter_path::cas);
}

TEST(ScatterSelect, EnvOverrideForcesEachPath) {
  semisort_params p;
  p.scatter_with = strategy::cas;  // env must win over the params pin
  {
    scoped_env env("PARSEMI_SCATTER_PATH", "buffered");
    EXPECT_EQ(choose_scatter_path(10'000, 100, 16, p),
              scatter_path::buffered);
  }
  {
    scoped_env env("PARSEMI_SCATTER_PATH", "blocked");
    EXPECT_EQ(choose_scatter_path(10'000, 100, 16, p), scatter_path::blocked);
  }
  p.scatter_with = strategy::blocked;
  {
    scoped_env env("PARSEMI_SCATTER_PATH", "cas");
    EXPECT_EQ(choose_scatter_path(10'000'000, 6500, 16, p),
              scatter_path::cas);
  }
  // "adaptive" (and unknown values) fall through to params + heuristic.
  {
    scoped_env env("PARSEMI_SCATTER_PATH", "adaptive");
    EXPECT_EQ(choose_scatter_path(10'000'000, 6500, 16, p),
              scatter_path::blocked);
    p.scatter_with = strategy::adaptive;
    EXPECT_EQ(choose_scatter_path(10'000'000, 6500, 16, p),
              scatter_path::blocked);
  }
  {
    scoped_env env("PARSEMI_SCATTER_PATH", "warp-drive");
    EXPECT_EQ(choose_scatter_path(10'000, 100, 16, p), scatter_path::cas);
  }
}

// One semisort run with the given strategy; returns stats and verifies the
// output contract so a path mix-up can't hide behind a wrong answer.
semisort_stats run_semisort(const std::vector<record>& in, strategy s) {
  semisort_params params;
  params.scatter_with = s;
  semisort_stats stats;
  params.stats = &stats;
  std::vector<record> out(in.size());
  semisort_hashed(std::span<const record>(in), std::span<record>(out),
                  record_key{}, params);
  EXPECT_TRUE(testing::valid_semisort(std::span<const record>(out),
                                      std::span<const record>(in)));
  return stats;
}

TEST(ScatterSelect, StatsReportChosenPathEndToEnd) {
  auto in = generate_records(200'000, {distribution_kind::uniform, 2000}, 21);

  // Default pipeline at this size: small bucket count, 16-byte records —
  // the adaptive selector must choose blocked, and the blocked run reports
  // zero placement atomics.
  semisort_stats adaptive = run_semisort(in, strategy::adaptive);
  EXPECT_EQ(adaptive.scatter_path_used, scatter_path::blocked);
  EXPECT_EQ(adaptive.scatter_chunk_claims, 0u);
  EXPECT_EQ(adaptive.scatter_atomics_saved, adaptive.n);

  semisort_stats cas = run_semisort(in, strategy::cas);
  EXPECT_EQ(cas.scatter_path_used, scatter_path::cas);

  semisort_stats buffered = run_semisort(in, strategy::buffered);
  EXPECT_EQ(buffered.scatter_path_used, scatter_path::buffered);

  semisort_stats blocked = run_semisort(in, strategy::blocked);
  EXPECT_EQ(blocked.scatter_path_used, scatter_path::blocked);
}

TEST(ScatterSelect, EnvOverrideForcesPathEndToEnd) {
  auto in = generate_records(100'000, {distribution_kind::uniform, 1000}, 22);
  scoped_env env("PARSEMI_SCATTER_PATH", "buffered");
  // Even with params pinning CAS, the env override wins.
  semisort_stats stats = run_semisort(in, strategy::cas);
  EXPECT_EQ(stats.scatter_path_used, scatter_path::buffered);
}

TEST(ScatterSelect, TelemetryIsPathConditional) {
  auto in = generate_records(150'000, {distribution_kind::zipfian, 50'000}, 23);

  // CAS: probe histogram populated, flush counters untouched.
  semisort_stats cas = run_semisort(in, strategy::cas);
  size_t probed = 0;
  for (size_t b : cas.probe_hist) probed += b;
  EXPECT_EQ(probed, cas.n);
  EXPECT_EQ(cas.scatter_flushes, 0u);
  EXPECT_EQ(cas.scatter_bytes_staged, 0u);
  EXPECT_EQ(cas.scatter_atomics_saved, 0u);

  // Buffered: every record staged exactly once, claims ≤ flush-run count,
  // probe histogram untouched.
  semisort_stats buffered = run_semisort(in, strategy::buffered);
  EXPECT_GT(buffered.scatter_flushes, 0u);
  EXPECT_GT(buffered.scatter_chunk_claims, 0u);
  EXPECT_EQ(buffered.scatter_bytes_staged, buffered.n * sizeof(record));
  EXPECT_EQ(buffered.scatter_atomics_saved,
            buffered.n - buffered.scatter_chunk_claims);
  size_t flush_total = 0;
  for (size_t b : buffered.flush_hist) flush_total += b;
  EXPECT_EQ(flush_total, buffered.scatter_flushes);
  for (size_t b : buffered.probe_hist) EXPECT_EQ(b, 0u);
  EXPECT_EQ(buffered.max_probe, 0u);

  // Blocked: no probes, no flushes, all placement atomics saved.
  semisort_stats blocked = run_semisort(in, strategy::blocked);
  for (size_t b : blocked.probe_hist) EXPECT_EQ(b, 0u);
  EXPECT_EQ(blocked.scatter_flushes, 0u);
  EXPECT_EQ(blocked.scatter_atomics_saved, blocked.n);
}

}  // namespace
}  // namespace parsemi
