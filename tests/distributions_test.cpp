// Tests for the workload generators: statistical shape of each distribution
// and determinism of the counter-based parallel generation.
#include "workloads/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "scheduler/scheduler.h"

namespace parsemi {
namespace {

std::unordered_map<uint64_t, size_t> multiplicities(
    const std::vector<record>& recs) {
  std::unordered_map<uint64_t, size_t> m;
  for (const auto& r : recs) m[r.key]++;
  return m;
}

TEST(Distributions, GenerationIsDeterministic) {
  distribution_spec spec{distribution_kind::exponential, 1000};
  auto a = generate_records(50000, spec, 7);
  auto b = generate_records(50000, spec, 7);
  EXPECT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << i;
}

TEST(Distributions, DifferentSeedsDiffer) {
  distribution_spec spec{distribution_kind::uniform, 1000000};
  auto a = generate_records(10000, spec, 1);
  auto b = generate_records(10000, spec, 2);
  size_t same = 0;
  for (size_t i = 0; i < a.size(); ++i) same += (a[i].key == b[i].key);
  EXPECT_LT(same, 10u);
}

TEST(Distributions, DeterministicAcrossWorkerCounts) {
  distribution_spec spec{distribution_kind::zipfian, 100000};
  int original = num_workers();
  set_num_workers(1);
  auto a = generate_records(30000, spec, 3);
  set_num_workers(4);
  auto b = generate_records(30000, spec, 3);
  set_num_workers(original);
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << i;
}

TEST(Distributions, PayloadIsRecordIndex) {
  auto recs = generate_records(1000, {distribution_kind::uniform, 10}, 5);
  for (size_t i = 0; i < recs.size(); ++i) EXPECT_EQ(recs[i].payload, i);
}

TEST(Distributions, UniformSmallRangeHitsAllValues) {
  // N = 10 over 100k draws: all 10 hashed values present, each ≈ 10%.
  auto recs = generate_records(100000, {distribution_kind::uniform, 10}, 11);
  auto m = multiplicities(recs);
  EXPECT_EQ(m.size(), 10u);
  for (auto& [k, c] : m) EXPECT_NEAR(static_cast<double>(c), 10000.0, 600.0);
}

TEST(Distributions, UniformLargeRangeMostlyDistinct) {
  auto recs = generate_records(100000, {distribution_kind::uniform, 1u << 30}, 13);
  auto m = multiplicities(recs);
  EXPECT_GT(m.size(), 99000u);  // birthday collisions only
}

TEST(Distributions, ExponentialMeanMatchesLambda) {
  constexpr uint64_t kLambda = 1000;
  auto recs = generate_records(200000, {distribution_kind::exponential, kLambda}, 17);
  // Recover underlying values by regenerating them (hash64 is one-way here,
  // so recompute through draw_underlying_key).
  rng base(splitmix64(17));
  distribution_spec spec{distribution_kind::exponential, kLambda};
  double sum = 0;
  for (size_t i = 0; i < recs.size(); ++i)
    sum += static_cast<double>(draw_underlying_key(spec, base, i));
  double mean = sum / static_cast<double>(recs.size());
  // Flooring shifts the mean down by ~0.5.
  EXPECT_NEAR(mean, static_cast<double>(kLambda) - 0.5, 15.0);
}

TEST(Distributions, ExponentialSkewsTowardSmallValues) {
  auto recs = generate_records(100000, {distribution_kind::exponential, 100}, 19);
  auto m = multiplicities(recs);
  // Mean 100 ⇒ ~few hundred distinct values dominate.
  EXPECT_LT(m.size(), 3000u);
  size_t max_count = 0;
  for (auto& [k, c] : m) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 500u);  // value 0 alone has P ≈ 1%
}

TEST(Distributions, ZipfFrequenciesFollowOneOverRank) {
  constexpr uint64_t kM = 1000;
  constexpr size_t kN = 400000;
  distribution_spec spec{distribution_kind::zipfian, kM};
  rng base(splitmix64(23));
  std::map<uint64_t, size_t> counts;
  for (size_t i = 0; i < kN; ++i) counts[draw_underlying_key(spec, base, i)]++;
  double h_m = 0;
  for (uint64_t i = 1; i <= kM; ++i) h_m += 1.0 / static_cast<double>(i);
  // Check the head of the distribution against 1/(i·H_M) within 10%.
  for (uint64_t i : {1ull, 2ull, 3ull, 5ull, 10ull}) {
    double expected = static_cast<double>(kN) / (static_cast<double>(i) * h_m);
    EXPECT_NEAR(static_cast<double>(counts[i]), expected, 0.1 * expected)
        << "rank " << i;
  }
  // Support stays within [1, M].
  EXPECT_GE(counts.begin()->first, 1u);
  EXPECT_LE(counts.rbegin()->first, kM);
}

TEST(Distributions, ZipfParameterOneDegeneratesToConstant) {
  auto recs = generate_records(1000, {distribution_kind::zipfian, 1}, 29);
  auto m = multiplicities(recs);
  EXPECT_EQ(m.size(), 1u);
}

TEST(Distributions, Table1SetHas17Entries) {
  auto specs = table1_distributions();
  EXPECT_EQ(specs.size(), 17u);
  size_t exp = 0, uni = 0, zipf = 0;
  for (auto& s : specs) {
    if (s.kind == distribution_kind::exponential) exp++;
    if (s.kind == distribution_kind::uniform) uni++;
    if (s.kind == distribution_kind::zipfian) zipf++;
  }
  EXPECT_EQ(exp, 6u);
  EXPECT_EQ(uni, 6u);
  EXPECT_EQ(zipf, 5u);
}

TEST(Distributions, KeysAreHashed) {
  // Underlying small integers must not appear as raw keys.
  auto recs = generate_records(1000, {distribution_kind::uniform, 10}, 31);
  for (const auto& r : recs) EXPECT_GT(r.key, 1000000ULL);
}

}  // namespace
}  // namespace parsemi
