// Tests for Phase 3 — CAS scatter with linear/random probing, both slot
// claiming modes (key-CAS and flag-array), and overflow detection.
#include "core/scatter.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/bucket_plan.h"
#include "core/sampler.h"
#include "hashing/hash64.h"
#include "sort/radix_sort.h"
#include "test_helpers.h"
#include "util/rng.h"
#include "workloads/distributions.h"

namespace parsemi {
namespace {

// Arbitrary record type WITHOUT a leading key word → flag-array mode.
struct odd_record {
  uint32_t tag;
  uint64_t key_value;
  friend bool operator==(const odd_record&, const odd_record&) = default;
};
struct odd_key {
  uint64_t operator()(const odd_record& r) const { return r.key_value; }
};

static_assert(scatter_storage<record>::kKeyCas,
              "record must take the key-CAS fast path");

// Shared context: plans are arena-backed views tied to the context they
// were built on; a static one keeps them valid for the binary's lifetime.
pipeline_context& test_ctx() {
  static pipeline_context ctx;
  return ctx;
}
static_assert(!scatter_storage<odd_record>::kKeyCas,
              "odd_record must take the flag-array path");

template <typename Record, typename GetKey>
std::pair<bucket_plan, std::vector<Record>> plan_for(
    const std::vector<Record>& in, GetKey get_key,
    const semisort_params& params) {
  rng base(99);
  auto sample = sample_keys(std::span<const Record>(in), get_key,
                            params.sampling_p, base);
  radix_sort_u64(std::span<uint64_t>(sample));
  auto plan = build_bucket_plan(std::span<const uint64_t>(sample), in.size(),
                                params, params.alpha, test_ctx());
  return {std::move(plan), in};
}

template <typename Record, typename GetKey, typename Less>
void check_scatter(const std::vector<Record>& in, GetKey get_key, Less less,
                   semisort_params params) {
  auto [plan, input] = plan_for(in, get_key, params);
  scatter_storage<Record> storage(plan.total_slots, rng(5).next() | 1);
  auto result = scatter_records(std::span<const Record>(input), storage, plan,
                                get_key, params, rng(7));
  ASSERT_EQ(result, scatter_result::ok);

  // Every record present exactly once, inside its own bucket's slot range.
  std::vector<Record> found;
  for (size_t i = 0; i < plan.total_slots; ++i)
    if (storage.occupied(i)) found.push_back(storage.slots[i]);
  ASSERT_EQ(found.size(), input.size());
  EXPECT_TRUE(testing::is_permutation_of(std::span<const Record>(found),
                                         std::span<const Record>(input), less));
  // Placement respects bucket boundaries.
  for (size_t i = 0, b = 0; i < plan.total_slots; ++i) {
    while (plan.bucket_offset[b + 1] <= i) ++b;
    if (storage.occupied(i)) {
      ASSERT_EQ(plan.bucket_of(get_key(storage.slots[i])), b) << "slot " << i;
    }
  }
}

namespace {
bool rec_less(const record& a, const record& b) {
  return a.key != b.key ? a.key < b.key : a.payload < b.payload;
}
bool odd_less(const odd_record& a, const odd_record& b) {
  return a.key_value != b.key_value ? a.key_value < b.key_value : a.tag < b.tag;
}
}  // namespace

TEST(Scatter, KeyCasModeUniformInput) {
  auto in = generate_records(100000, {distribution_kind::uniform, 100000}, 1);
  check_scatter(in, record_key{}, rec_less, semisort_params{});
}

TEST(Scatter, KeyCasModeHeavyInput) {
  auto in = generate_records(100000, {distribution_kind::uniform, 10}, 2);
  check_scatter(in, record_key{}, rec_less, semisort_params{});
}

TEST(Scatter, KeyCasModeZipfInput) {
  auto in = generate_records(80000, {distribution_kind::zipfian, 100000}, 3);
  check_scatter(in, record_key{}, rec_less, semisort_params{});
}

TEST(Scatter, FlagModeArbitraryRecordType) {
  std::vector<odd_record> in(60000);
  rng r(4);
  for (size_t i = 0; i < in.size(); ++i)
    in[i] = {static_cast<uint32_t>(i), hash64(r.next_below(500))};
  check_scatter(in, odd_key{}, odd_less, semisort_params{});
}

TEST(Scatter, RandomProbingAblation) {
  semisort_params params;
  params.probing = semisort_params::probe_strategy::random;
  auto in = generate_records(60000, {distribution_kind::exponential, 1000}, 5);
  check_scatter(in, record_key{}, rec_less, params);
}

TEST(Scatter, SentinelClashDetected) {
  // Force a record whose key equals the sentinel: scatter must report the
  // clash rather than silently corrupting occupancy.
  auto in = generate_records(5000, {distribution_kind::uniform, 100}, 6);
  uint64_t sentinel = rng(5).next() | 1;
  in[1234].key = sentinel;
  semisort_params params;
  auto [plan, input] = plan_for(in, record_key{}, params);
  scatter_storage<record> storage(plan.total_slots, sentinel);
  auto result = scatter_records(std::span<const record>(input), storage, plan,
                                record_key{}, params, rng(7));
  EXPECT_EQ(result, scatter_result::sentinel_clash);
}

TEST(Scatter, OverflowDetectedWhenBucketsTooSmall) {
  // Shrink every bucket to ~nothing by building the plan for a tiny
  // pretended n, then scattering far more records into it.
  auto few = generate_records(64, {distribution_kind::uniform, 4}, 7);
  semisort_params params;
  params.round_to_pow2 = false;
  rng base(1);
  auto sample = sample_keys(std::span<const record>(few), record_key{},
                            params.sampling_p, base);
  radix_sort_u64(std::span<uint64_t>(sample));
  auto plan =
      build_bucket_plan(std::span<const uint64_t>(sample), 64, params, 0.01,
                        test_ctx());
  ASSERT_LT(plan.total_slots, 100000u);

  auto many = generate_records(100000, {distribution_kind::uniform, 4}, 7);
  scatter_storage<record> storage(plan.total_slots, rng(5).next() | 1);
  auto result = scatter_records(std::span<const record>(many), storage, plan,
                                record_key{}, params, rng(7));
  EXPECT_EQ(result, scatter_result::overflow);
}

TEST(Scatter, DeterministicPlacementAcrossWorkerCounts) {
  auto in = generate_records(50000, {distribution_kind::exponential, 100}, 8);
  semisort_params params;
  auto [plan, input] = plan_for(in, record_key{}, params);

  auto run_with = [&](int workers) {
    set_num_workers(workers);
    scatter_storage<record> storage(plan.total_slots, 0x123457ULL);
    auto result = scatter_records(std::span<const record>(input), storage, plan,
                                  record_key{}, params, rng(7));
    EXPECT_EQ(result, scatter_result::ok);
    std::vector<record> recs;
    for (size_t i = 0; i < plan.total_slots; ++i)
      if (storage.occupied(i)) recs.push_back(storage.slots[i]);
    return recs;
  };
  int original = num_workers();
  auto seq = run_with(1);
  auto par = run_with(4);
  set_num_workers(original);
  // Placement *slots* can differ under contention, but the multiset of
  // records per bucket must match; compare bucket-local multisets by
  // sorting both record lists.
  auto less = [](const record& a, const record& b) {
    return a.key != b.key ? a.key < b.key : a.payload < b.payload;
  };
  EXPECT_TRUE(testing::is_permutation_of(std::span<const record>(par),
                                         std::span<const record>(seq), less));
}

}  // namespace
}  // namespace parsemi
