// Tests for Phase 3 — the scatter engine: all three placement paths (CAS
// with linear/random probing, buffered chunk-claiming, blocked two-pass
// counting), both slot claiming modes (key-CAS and flag-array), sentinel
// clash and overflow detection on every path, and the blocked path's
// deterministic stable placement.
#include "core/scatter.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/bucket_plan.h"
#include "core/sampler.h"
#include "core/semisort.h"
#include "hashing/hash64.h"
#include "sort/radix_sort.h"
#include "test_helpers.h"
#include "util/rng.h"
#include "workloads/distributions.h"

namespace parsemi {
namespace {

// Arbitrary record type WITHOUT a leading key word → flag-array mode.
struct odd_record {
  uint32_t tag;
  uint64_t key_value;
  friend bool operator==(const odd_record&, const odd_record&) = default;
};
struct odd_key {
  uint64_t operator()(const odd_record& r) const { return r.key_value; }
};

// 12-byte record — an odd (non-power-of-two, sub-cache-line) size on the
// flag-array variant, so the buffered path's memcpy flushes and the blocked
// path's placement handle ranges that straddle cache lines unevenly.
struct tiny_record {
  uint32_t lo;
  uint32_t hi;
  uint32_t tag;
  friend bool operator==(const tiny_record&, const tiny_record&) = default;
};
struct tiny_key {
  uint64_t operator()(const tiny_record& r) const {
    return r.lo | (static_cast<uint64_t>(r.hi) << 32);
  }
};
static_assert(sizeof(tiny_record) == 12);

static_assert(scatter_storage<record>::kKeyCas,
              "record must take the key-CAS fast path");

// Shared context: plans are arena-backed views tied to the context they
// were built on; a static one keeps them valid for the binary's lifetime.
pipeline_context& test_ctx() {
  static pipeline_context ctx;
  return ctx;
}
static_assert(!scatter_storage<odd_record>::kKeyCas,
              "odd_record must take the flag-array path");
static_assert(!scatter_storage<tiny_record>::kKeyCas,
              "tiny_record must take the flag-array path");

constexpr scatter_path kAllPaths[] = {
    scatter_path::cas, scatter_path::buffered, scatter_path::blocked};

template <typename Record, typename GetKey>
std::pair<bucket_plan, std::vector<Record>> plan_for(
    const std::vector<Record>& in, GetKey get_key,
    const semisort_params& params) {
  rng base(99);
  auto sample = sample_keys(std::span<const Record>(in), get_key,
                            params.sampling_p, base);
  radix_sort_u64(std::span<uint64_t>(sample));
  auto plan = build_bucket_plan(std::span<const uint64_t>(sample), in.size(),
                                params, params.alpha, test_ctx());
  return {std::move(plan), in};
}

template <typename Record, typename GetKey, typename Less>
void check_scatter(const std::vector<Record>& in, GetKey get_key, Less less,
                   semisort_params params,
                   scatter_path path = scatter_path::cas) {
  auto [plan, input] = plan_for(in, get_key, params);
  scatter_storage<Record> storage(plan.total_slots, rng(5).next() | 1);
  auto result =
      scatter_dispatch(path, std::span<const Record>(input), storage, plan,
                       get_key, params, rng(7), test_ctx());
  ASSERT_EQ(result, scatter_result::ok);

  // Every record present exactly once, inside its own bucket's slot range.
  std::vector<Record> found;
  for (size_t i = 0; i < plan.total_slots; ++i)
    if (storage.occupied(i)) found.push_back(storage.slots[i]);
  ASSERT_EQ(found.size(), input.size());
  EXPECT_TRUE(testing::is_permutation_of(std::span<const Record>(found),
                                         std::span<const Record>(input), less));
  // Placement respects bucket boundaries; the buffered and blocked paths
  // additionally fill each bucket front-to-back (occupancy is a prefix).
  for (size_t b = 0; b < plan.num_buckets(); ++b) {
    bool gap = false;
    for (size_t i = plan.bucket_offset[b]; i < plan.bucket_offset[b + 1]; ++i) {
      if (storage.occupied(i)) {
        ASSERT_EQ(plan.bucket_of(get_key(storage.slots[i])), b) << "slot " << i;
        if (path != scatter_path::cas) {
          ASSERT_FALSE(gap) << "bucket " << b << " not prefix-filled";
        }
      } else {
        gap = true;
      }
    }
  }
}

namespace {
bool rec_less(const record& a, const record& b) {
  return a.key != b.key ? a.key < b.key : a.payload < b.payload;
}
bool odd_less(const odd_record& a, const odd_record& b) {
  return a.key_value != b.key_value ? a.key_value < b.key_value : a.tag < b.tag;
}
}  // namespace

TEST(Scatter, KeyCasModeUniformInput) {
  auto in = generate_records(100000, {distribution_kind::uniform, 100000}, 1);
  check_scatter(in, record_key{}, rec_less, semisort_params{});
}

TEST(Scatter, KeyCasModeHeavyInput) {
  auto in = generate_records(100000, {distribution_kind::uniform, 10}, 2);
  check_scatter(in, record_key{}, rec_less, semisort_params{});
}

TEST(Scatter, KeyCasModeZipfInput) {
  auto in = generate_records(80000, {distribution_kind::zipfian, 100000}, 3);
  check_scatter(in, record_key{}, rec_less, semisort_params{});
}

TEST(Scatter, FlagModeArbitraryRecordType) {
  std::vector<odd_record> in(60000);
  rng r(4);
  for (size_t i = 0; i < in.size(); ++i)
    in[i] = {static_cast<uint32_t>(i), hash64(r.next_below(500))};
  check_scatter(in, odd_key{}, odd_less, semisort_params{});
}

TEST(Scatter, RandomProbingAblation) {
  semisort_params params;
  params.probing = semisort_params::probe_strategy::random;
  auto in = generate_records(60000, {distribution_kind::exponential, 1000}, 5);
  check_scatter(in, record_key{}, rec_less, params);
}

TEST(Scatter, BufferedPathKeyCasRecords) {
  auto in = generate_records(100000, {distribution_kind::uniform, 5000}, 11);
  check_scatter(in, record_key{}, rec_less, semisort_params{},
                scatter_path::buffered);
}

TEST(Scatter, BlockedPathKeyCasRecords) {
  auto in = generate_records(100000, {distribution_kind::zipfian, 100000}, 12);
  check_scatter(in, record_key{}, rec_less, semisort_params{},
                scatter_path::blocked);
}

TEST(Scatter, BufferedPathFlagModeOddRecords) {
  std::vector<odd_record> in(60000);
  rng r(13);
  for (size_t i = 0; i < in.size(); ++i)
    in[i] = {static_cast<uint32_t>(i), hash64(r.next_below(700))};
  check_scatter(in, odd_key{}, odd_less, semisort_params{},
                scatter_path::buffered);
}

TEST(Scatter, BlockedPathFlagModeOddRecords) {
  std::vector<odd_record> in(60000);
  rng r(14);
  for (size_t i = 0; i < in.size(); ++i)
    in[i] = {static_cast<uint32_t>(i), hash64(r.next_below(700))};
  check_scatter(in, odd_key{}, odd_less, semisort_params{},
                scatter_path::blocked);
}

TEST(Scatter, TwelveByteRecordsAllPaths) {
  // 12-byte flag-array records: the buffered path's per-buffer capacity
  // (256/12 = 21 records) and its memcpy flushes get genuinely odd sizes.
  std::vector<tiny_record> in(50000);
  rng r(15);
  for (size_t i = 0; i < in.size(); ++i) {
    uint64_t k = hash64(r.next_below(300));
    in[i] = {static_cast<uint32_t>(k), static_cast<uint32_t>(k >> 32),
             static_cast<uint32_t>(i)};
  }
  auto less = [](const tiny_record& a, const tiny_record& b) {
    return tiny_key{}(a) != tiny_key{}(b) ? tiny_key{}(a) < tiny_key{}(b)
                                          : a.tag < b.tag;
  };
  for (scatter_path path : kAllPaths)
    check_scatter(in, tiny_key{}, less, semisort_params{}, path);
}

TEST(Scatter, SentinelClashDetectedOnEveryPath) {
  // Force a record whose key equals the sentinel: every path must report
  // the clash rather than silently corrupting occupancy.
  auto in = generate_records(5000, {distribution_kind::uniform, 100}, 6);
  uint64_t sentinel = rng(5).next() | 1;
  in[1234].key = sentinel;
  semisort_params params;
  auto [plan, input] = plan_for(in, record_key{}, params);
  for (scatter_path path : kAllPaths) {
    scatter_storage<record> storage(plan.total_slots, sentinel);
    auto result =
        scatter_dispatch(path, std::span<const record>(input), storage, plan,
                         record_key{}, params, rng(7), test_ctx());
    EXPECT_EQ(result, scatter_result::sentinel_clash)
        << "path " << to_string(path);
  }
}

TEST(Scatter, OverflowDetectedWhenBucketsTooSmallOnEveryPath) {
  // Shrink every bucket to ~nothing by building the plan for a tiny
  // pretended n, then scattering far more records into it.
  auto few = generate_records(64, {distribution_kind::uniform, 4}, 7);
  semisort_params params;
  params.round_to_pow2 = false;
  rng base(1);
  auto sample = sample_keys(std::span<const record>(few), record_key{},
                            params.sampling_p, base);
  radix_sort_u64(std::span<uint64_t>(sample));
  auto plan =
      build_bucket_plan(std::span<const uint64_t>(sample), 64, params, 0.01,
                        test_ctx());
  ASSERT_LT(plan.total_slots, 100000u);

  auto many = generate_records(100000, {distribution_kind::uniform, 4}, 7);
  for (scatter_path path : kAllPaths) {
    scatter_storage<record> storage(plan.total_slots, rng(5).next() | 1);
    auto result =
        scatter_dispatch(path, std::span<const record>(many), storage, plan,
                         record_key{}, params, rng(7), test_ctx());
    EXPECT_EQ(result, scatter_result::overflow) << "path " << to_string(path);
  }
}

TEST(Scatter, BufferedSentinelClashTriggersSemisortRestart) {
  // End-to-end: a semisort forced onto the buffered path whose first
  // attempt draws a sentinel colliding with an input key must restart with
  // a fresh sentinel and still produce a valid semisort. Plant the colliding
  // key by computing the sentinel the first attempt will draw.
  size_t n = 40000;
  auto in = generate_records(n, {distribution_kind::uniform, 500}, 16);
  semisort_params params;
  params.scatter_with = semisort_params::scatter_strategy::buffered;
  // Attempt 0 seeds its rng exactly like semisort_attempt does.
  rng attempt0(splitmix64(params.seed + 0x9e3779b9ULL * 0));
  in[77].key = attempt0.split(2).next() | 1;  // the attempt-0 sentinel
  semisort_stats stats;
  params.stats = &stats;
  std::vector<record> out(n);
  semisort_hashed(std::span<const record>(in), std::span<record>(out),
                  record_key{}, params);
  EXPECT_GE(stats.restarts, 1);
  EXPECT_EQ(stats.scatter_path_used, scatter_path::buffered);
  EXPECT_TRUE(testing::valid_semisort(std::span<const record>(out),
                                      std::span<const record>(in)));
}

TEST(Scatter, DeterministicPlacementAcrossWorkerCounts) {
  auto in = generate_records(50000, {distribution_kind::exponential, 100}, 8);
  semisort_params params;
  auto [plan, input] = plan_for(in, record_key{}, params);

  auto run_with = [&](int workers) {
    set_num_workers(workers);
    scatter_storage<record> storage(plan.total_slots, 0x123457ULL);
    auto result = scatter_records(std::span<const record>(input), storage, plan,
                                  record_key{}, params, rng(7));
    EXPECT_EQ(result, scatter_result::ok);
    std::vector<record> recs;
    for (size_t i = 0; i < plan.total_slots; ++i)
      if (storage.occupied(i)) recs.push_back(storage.slots[i]);
    return recs;
  };
  int original = num_workers();
  auto seq = run_with(1);
  auto par = run_with(4);
  set_num_workers(original);
  // Placement *slots* can differ under contention, but the multiset of
  // records per bucket must match; compare bucket-local multisets by
  // sorting both record lists.
  auto less = [](const record& a, const record& b) {
    return a.key != b.key ? a.key < b.key : a.payload < b.payload;
  };
  EXPECT_TRUE(testing::is_permutation_of(std::span<const record>(par),
                                         std::span<const record>(seq), less));
}

TEST(Scatter, BlockedPlacementExactlyDeterministicAcrossWorkerCounts) {
  // Stronger than the CAS guarantee: the blocked path's two-pass placement
  // is stable (input order within each bucket) and byte-identical at every
  // worker count — the full slot array must match, not just per-bucket
  // multisets.
  auto in = generate_records(50000, {distribution_kind::exponential, 100}, 9);
  semisort_params params;
  auto [plan, input] = plan_for(in, record_key{}, params);

  auto run_with = [&](int workers) {
    set_num_workers(workers);
    scatter_storage<record> storage(plan.total_slots, 0x123457ULL);
    auto result = scatter_dispatch(scatter_path::blocked,
                                   std::span<const record>(input), storage,
                                   plan, record_key{}, params, rng(7),
                                   test_ctx());
    EXPECT_EQ(result, scatter_result::ok);
    std::vector<record> recs;
    for (size_t i = 0; i < plan.total_slots; ++i)
      recs.push_back(storage.occupied(i) ? storage.slots[i]
                                         : record{0, 0});
    return recs;
  };
  int original = num_workers();
  auto seq = run_with(1);
  auto par = run_with(4);
  set_num_workers(original);
  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    ASSERT_EQ(seq[i].key, par[i].key) << "slot " << i;
    ASSERT_EQ(seq[i].payload, par[i].payload) << "slot " << i;
  }
}

}  // namespace
}  // namespace parsemi
