// Fixture: arena allocations escaping their arena_scope — every function
// here carries exactly one finding. Covers the dataflow shapes: direct
// return, tainted-local return, return after the scope rewound, a member
// store, and laundering through a helper that returns fresh arena memory.
struct arena {
  template <class T>
  T* alloc(unsigned long n);
};
struct arena_scope {
  explicit arena_scope(arena& a);
  ~arena_scope();
};

int* direct_return(arena& a, unsigned long n) {
  arena_scope scope(a);
  return a.alloc<int>(n);  // flagged: rewinds at scope's close
}

int* escapes_via_return(arena& a, unsigned long n) {
  arena_scope scope(a);
  int* tmp = a.alloc<int>(n);
  tmp[0] = 1;
  return tmp;  // flagged: tmp dies at scope's closing brace
}

int* returned_after_rewind(arena& a, unsigned long n) {
  int* tmp = nullptr;
  {
    arena_scope scope(a);
    tmp = a.alloc<int>(n);
  }
  return tmp;  // flagged: the scope already rewound
}

struct holder {
  int* stash_;
  void escapes_via_member(arena& a, unsigned long n) {
    arena_scope scope(a);
    int* tmp = a.alloc<int>(n);
    stash_ = tmp;  // flagged: member outlives the scope
  }
};

int* make_buffer(arena& a, unsigned long n) {
  return a.alloc<int>(n);  // clean here: no scope, caller's contract
}

int* laundered_escape(arena& a, unsigned long n) {
  arena_scope scope(a);
  int* tmp = make_buffer(a, n);
  return tmp;  // flagged: make_buffer() returns fresh arena memory
}
