// Fixture (file name contains "scatter"): the rationale comment right above
// the in-loop RMW satisfies the rule.
#include <atomic>

void hot_loop(std::atomic<long>& cursor, int n) {
  long acc = 0;
  for (int i = 0; i < n; ++i) {
    // One relaxed claim per iteration is the point of this benchmark loop.
    acc += cursor.fetch_add(1, std::memory_order_relaxed);
  }
  (void)acc;
}
