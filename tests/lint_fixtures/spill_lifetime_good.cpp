// Fixture: spill-derived spans that stay within their owner's lifetime —
// value extraction before invalidation, move-into-owner transfer (the
// mapping travels with ownership), and caller-owned parameters. Nothing
// flagged.
struct byte_span {
  unsigned char* p;
  unsigned long n;
};
struct spill_file {
  explicit spill_file(unsigned long bytes);
  byte_span as_span();
  void reset();
};
namespace std {
template <class T>
T&& move(T& v);
}

unsigned long value_before_reset(unsigned long bytes) {
  spill_file f(bytes);
  byte_span sp = f.as_span();
  unsigned long total = sp.n;
  f.reset();
  return total;  // the value survived; the span was not touched again
}

unsigned long move_transfers_the_mapping(unsigned long bytes) {
  spill_file a(bytes);
  byte_span sp = a.as_span();
  spill_file b = std::move(a);  // sp now rides on b, which is still alive
  return sp.n;
}

byte_span param_owner_is_callers(spill_file& f) {
  byte_span sp = f.as_span();
  return sp;  // caller owns f; handing back a view is the contract
}
