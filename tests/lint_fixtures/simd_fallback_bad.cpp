// Fixture: intrinsic blocks that break the scalar-fallback contract. The
// analyzer is lexical, so no vector headers are needed (and this file is
// never compiled). Expected hard findings (simd-fallback): 3 —
//   1. an #ifdef-guarded intrinsic block with no #else at all,
//   2. a conditional whose every branch (including the #else) uses
//      intrinsics, so no build tier gets scalar code,
//   3. a naked intrinsic call outside any preprocessor guard.
#include <cstdint>

// (1) Guarded, but when __AVX2__ is absent this function body vanishes —
// there is no scalar sibling.
long long sum_no_else(long long x) {
#ifdef __AVX2__
  __m256i v = _mm256_set1_epi64x(x);
  return _mm256_extract_epi64(_mm256_add_epi64(v, v), 0);
#endif
}

// (2) Both branches vectorize; a forced-scalar build still hits intrinsics.
long long sum_else_also_vector(long long x) {
#if defined(__AVX2__)
  __m256i v = _mm256_set1_epi64x(x);
  return _mm256_extract_epi64(v, 0);
#else
  __m256i v = _mm256_set1_epi64x(x + 1);
  return _mm256_extract_epi64(v, 0);
#endif
}

// (3) No guard whatsoever.
long long sum_naked(long long x) {
  return _mm256_extract_epi64(_mm256_set1_epi64x(x), 0);
}
