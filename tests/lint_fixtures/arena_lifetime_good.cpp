// Fixture: allocations that stay inside their arena_scope, and an
// unscoped allocation that may legally escape (the caller owns the
// checkpoint discipline) — nothing flagged.
struct arena {
  template <class T>
  T* alloc(unsigned long n);
};
struct arena_scope {
  explicit arena_scope(arena& a);
  ~arena_scope();
};

long used_and_dropped(arena& a, unsigned long n) {
  arena_scope scope(a);
  int* tmp = a.alloc<int>(n);
  long sum = 0;
  for (unsigned long i = 0; i < n; ++i) sum += tmp[i];
  return sum;  // returns a value, not the allocation
}

int* unscoped_alloc_may_escape(arena& a, unsigned long n) {
  int* out = a.alloc<int>(n);  // no arena_scope active: caller's contract
  return out;
}
