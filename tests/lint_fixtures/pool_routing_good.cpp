// Fixture: routed spawning — every root either accepts a routing
// parameter (worker_pool& / pipeline_context& / semisort_params) or is
// reachable from an indexed caller, so a pool can always be threaded
// through. Nothing flagged.
struct worker_pool;
struct pipeline_context;
struct semisort_params;
template <class F>
void parallel_for(unsigned long lo, unsigned long hi, F&& f);
template <class F>
void parallel_for(worker_pool& pool, unsigned long lo, unsigned long hi,
                  F&& f);

void routed_by_pool(worker_pool& pool, long* out, unsigned long n) {
  parallel_for(pool, 0, n, [&out](unsigned long i) { out[i] = 0; });
}

void routed_by_context(pipeline_context& ctx, long* out, unsigned long n) {
  parallel_for(0, n, [&out](unsigned long i) { out[i] = 1; });
}

void routed_by_params(const semisort_params& params, long* out,
                      unsigned long n) {
  parallel_for(0, n, [&out](unsigned long i) { out[i] = 2; });
}

void leaf_spawns(long* out, unsigned long n) {  // has a routed caller below
  parallel_for(0, n, [&out](unsigned long i) { out[i] = 3; });
}

void routed_caller(worker_pool& pool, long* out, unsigned long n) {
  leaf_spawns(out, n);
}
