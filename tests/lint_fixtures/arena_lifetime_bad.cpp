// Fixture: arena allocations escaping their arena_scope — both flagged.
struct arena {
  template <class T>
  T* alloc(unsigned long n);
};
struct arena_scope {
  explicit arena_scope(arena& a);
  ~arena_scope();
};

int* escapes_via_return(arena& a, unsigned long n) {
  arena_scope scope(a);
  int* tmp = a.alloc<int>(n);
  tmp[0] = 1;
  return tmp;  // flagged: tmp dies at scope's closing brace
}

struct holder {
  int* stash_;
  void escapes_via_member(arena& a, unsigned long n) {
    arena_scope scope(a);
    int* tmp = a.alloc<int>(n);
    stash_ = tmp;  // flagged: member outlives the scope
  }
};
