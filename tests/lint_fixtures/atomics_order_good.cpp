// Fixture: explicit memory orders everywhere — nothing flagged.
#include <atomic>

int good_member_calls(std::atomic<int>& a) {
  a.store(1, std::memory_order_release);
  a.fetch_add(2, std::memory_order_relaxed);
  int expected = 0;
  a.compare_exchange_strong(expected, 7, std::memory_order_acq_rel,
                            std::memory_order_acquire);
  return a.load(std::memory_order_acquire);
}

void shadowing_is_not_an_atomic() {
  std::atomic<int> count{0};
  count.store(3, std::memory_order_relaxed);
  {
    int count = 0;  // plain int sharing the name: the declaration is not
                    // flagged (writes to it would be — rename instead)
    (void)count;
  }
}
