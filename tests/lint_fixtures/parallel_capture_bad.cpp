// Fixture: by-reference writes to captured locals inside parallel bodies —
// all flagged (a data race unless the range is degenerate).
#include <cstddef>

template <class F>
void parallel_for(size_t lo, size_t hi, F&& f);
template <class L, class R>
void par_do(L&& l, R&& r);

long racy_sum(size_t n) {
  long sum = 0;
  parallel_for(0, n, [&](size_t i) {
    sum += static_cast<long>(i);  // flagged: racy captured write
  });
  return sum;
}

int racy_flag(size_t n) {
  int hits = 0;
  parallel_for(0, n, [&](size_t) { ++hits; });  // flagged
  par_do([&] { hits = 1; }, [] {});             // flagged
  return hits;
}
