// Fixture: by-reference writes to captured locals inside parallel bodies —
// all flagged (a data race unless partitioned, atomic, or degenerate).
// Includes the dataflow-strengthened shapes: writes through a reference
// alias, writes from a nested lambda, and a par_do branch pair sharing a
// captured name.
#include <cstddef>

template <class F>
void parallel_for(size_t lo, size_t hi, F&& f);
template <class L, class R>
void par_do(L&& l, R&& r);

long racy_sum(size_t n) {
  long sum = 0;
  parallel_for(0, n, [&](size_t i) {
    sum += static_cast<long>(i);  // flagged: racy captured write
  });
  return sum;
}

int racy_flag(size_t n) {
  int hits = 0;
  parallel_for(0, n, [&](size_t) { ++hits; });   // flagged
  par_do([&] { hits = 1; }, [&] { hits = 2; });  // flagged twice: shared name
  return hits;
}

long racy_through_alias(size_t n) {
  long total = 0;
  parallel_for(0, n, [&](size_t i) {
    auto& t = total;
    t += static_cast<long>(i);  // flagged: the alias writes the capture
  });
  return total;
}

long racy_nested_lambda(size_t n) {
  long hits = 0;
  parallel_for(0, n, [&](size_t i) {
    auto bump = [&] { ++hits; };  // flagged: a lambda hop is still a race
    bump();
  });
  return hits;
}
