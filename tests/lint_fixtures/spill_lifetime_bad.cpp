// Fixture: spans derived from a spill_file outliving (or outrunning) their
// owner — one finding per function. The rule is scoped to src/, so tests
// feed this text under a src/ path.
struct byte_span {
  unsigned char* p;
  unsigned long n;
  byte_span first(unsigned long k);
};
struct spill_file {
  explicit spill_file(unsigned long bytes);
  byte_span as_span();
  void reset();
};
namespace std {
template <class T>
T&& move(T& v);
}
void consume(spill_file f);

byte_span escapes_via_return(unsigned long bytes) {
  spill_file f(bytes);
  byte_span sp = f.as_span();
  return sp;  // flagged: the mapping dies with f
}

byte_span view_of_view_escapes(unsigned long bytes) {
  spill_file f(bytes);
  byte_span sp = f.as_span();
  byte_span head = sp.first(16);
  return head;  // flagged: still backed by f
}

unsigned long use_after_reset(unsigned long bytes) {
  spill_file f(bytes);
  byte_span sp = f.as_span();
  f.reset();
  return sp.n;  // flagged: the mapping went away with the reset
}

unsigned long use_after_block_exit(unsigned long bytes) {
  byte_span sp{0, 0};
  {
    spill_file f(bytes);
    sp = f.as_span();
  }
  return sp.n;  // flagged: f was destroyed at the block's close
}

unsigned long use_after_move(unsigned long bytes) {
  spill_file f(bytes);
  byte_span sp = f.as_span();
  consume(std::move(f));
  return sp.n;  // flagged: ownership (and the mapping) moved away
}
