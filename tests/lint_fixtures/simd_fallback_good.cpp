// Fixture: the sanctioned SIMD dispatch shapes — tiered #if/#elif with a
// scalar #else, the inverted guard (scalar branch first, intrinsics in the
// #else), intrinsic names safely inside comments, and a waived naked
// intrinsic. The analyzer is lexical; this file is never compiled. Zero
// hard findings.
#include <cstdint>

// The canonical util/simd.h shape: every tier branch vectorizes, the final
// #else is the bit-exact scalar reference.
long long tiered_dispatch(long long x) {
#if defined(__AVX2__)
  __m256i v = _mm256_set1_epi64x(x);
  return _mm256_extract_epi64(v, 0);
#elif defined(__SSE2__)
  __m128i v = _mm_set1_epi64x(x);
  return _mm_cvtsi128_si64(v);
#else
  return x;  // scalar fallback: bit-exact with the vector forms
#endif
}

// Inverted guard: the non-else branch IS the scalar sibling.
long long inverted_guard(long long x) {
#if defined(PARSEMI_SIMD_OFF)
  return x;
#else
  return _mm256_extract_epi64(_mm256_set1_epi64x(x), 0);
#endif
}

// Nested: the inner conditional supplies its own scalar #else, so neither
// frame is flagged.
long long nested_dispatch(long long x) {
#ifndef PARSEMI_SIMD_OFF
#if defined(__AVX2__)
  return _mm256_extract_epi64(_mm256_set1_epi64x(x), 0);
#else
  return x + 1;
#endif
#else
  return x + 1;
#endif
}

// Mentioning _mm256_add_epi64 or __m256i in a comment is not a use.
/* Block comments citing _mm_loadu_si128 are fine too. */
long long comments_only(long long x) { return x; }

// A deliberate exception goes through the waiver machinery, not silence.
long long waived_probe(long long x) {
  // parsemi-check: allow(simd-fallback) -- ISA probe; scalar path upstream
  return _mm256_extract_epi64(_mm256_set1_epi64x(x), 0);
}
