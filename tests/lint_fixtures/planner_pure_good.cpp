// Fixture: a pure planner — decision functions that fill a plan struct
// from parameters and probe *results*, delegating every scan to a probe
// function that owns its own scratch and parallelism elsewhere. The rule
// is scoped to src/**/planner.h, so tests feed this text under
// "src/core/planner.h".
struct arena {
  void* alloc_bytes(unsigned long n);
};
struct pipeline_context {
  arena scratch;
};
struct key_domain {
  bool dense;
  unsigned long width;
};
struct semisort_plan {
  unsigned long n = 0;
  bool domain_dense = false;
  unsigned long domain_width = 0;
  unsigned long probe_passes = 0;
};

// Declared here, defined in its home header: the probe owns its scratch.
key_domain probe_key_domain(unsigned long n, pipeline_context& ctx);

unsigned long predict_bucket_count(unsigned long n, double sampling_p) {
  double sample = static_cast<double>(n) * sampling_p;
  return sample < 1.0 ? 1 : static_cast<unsigned long>(sample);
}

void plan_in_memory(unsigned long n, semisort_plan& plan,
                    pipeline_context& ctx) {
  key_domain dom = probe_key_domain(n, ctx);  // the probe executes, not us
  plan.probe_passes = 1;
  plan.domain_dense = dom.dense;
  plan.domain_width = dom.width;
}

semisort_plan build_plan(unsigned long n, pipeline_context& ctx) {
  semisort_plan plan;
  plan.n = n;
  plan_in_memory(n, plan, ctx);
  return plan;
}
