// Fixture: parallel work no caller can steer onto a chosen pool — a
// direct default_pool() grab and two unrouted spawning roots (one direct,
// one transitive). The rule is scoped to src/ outside src/scheduler/, so
// tests feed this text under a src/ path.
struct worker_pool;
worker_pool& default_pool();
template <class F>
void parallel_for(unsigned long lo, unsigned long hi, F&& f);

void grabs_default_pool(long* out, unsigned long n) {
  worker_pool& pool = default_pool();  // flagged at this call site
  parallel_for(0, n, [&out](unsigned long i) { out[i] = 0; });
}

void unrouted_root(long* out, unsigned long n) {  // flagged at the function
  parallel_for(0, n, [&out](unsigned long i) { out[i] = 1; });
}

namespace detail {
void spawn_leaf(long* out, unsigned long n) {  // called below: not a root
  parallel_for(0, n, [&out](unsigned long i) { out[i] = 2; });
}
}  // namespace detail

void transitive_root(long* out, unsigned long n) {  // flagged: spawns via leaf
  detail::spawn_leaf(out, n);
}
