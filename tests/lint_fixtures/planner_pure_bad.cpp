// Fixture: an impure planner — one function opens an arena_scope and runs
// its own probe scan, another spawns parallel work directly, and a third
// does both (two findings on one function). The rule is scoped to
// src/**/planner.h, so tests feed this text under "src/core/planner.h".
struct arena {
  void* alloc_bytes(unsigned long n);
};
struct arena_scope {
  explicit arena_scope(arena& a);
  ~arena_scope();
};
struct pipeline_context {
  arena scratch;
};
struct semisort_plan {
  unsigned long probe_passes = 0;
  unsigned long domain_width = 0;
};
template <class F>
void parallel_for(unsigned long lo, unsigned long hi, F&& f);

void plan_with_own_scratch(unsigned long n, semisort_plan& plan,
                           pipeline_context& ctx) {  // flagged: arena_scope
  arena_scope scope(ctx.scratch);
  unsigned long* partial =
      static_cast<unsigned long*>(ctx.scratch.alloc_bytes(n));
  plan.domain_width = partial[0];
}

void plan_with_own_scan(unsigned long n, const unsigned long* keys,
                        semisort_plan& plan,
                        pipeline_context& ctx) {  // flagged: spawns
  unsigned long mx = 0;
  parallel_for(0, n, [&](unsigned long i) {
    mx = keys[i] > mx ? keys[i] : mx;
  });
  plan.domain_width = mx;
  plan.probe_passes = 1;
}

void plan_doing_everything(unsigned long n, const unsigned long* keys,
                           semisort_plan& plan,
                           pipeline_context& ctx) {  // flagged twice
  arena_scope scope(ctx.scratch);
  unsigned long* tmp =
      static_cast<unsigned long*>(ctx.scratch.alloc_bytes(n));
  parallel_for(0, n, [&](unsigned long i) { tmp[i] = keys[i]; });
  plan.probe_passes = 1;
}
