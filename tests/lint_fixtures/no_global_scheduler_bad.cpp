// Fixture: direct calls to the deprecated singleton shim outside
// src/scheduler/ — both the pre-pool spelling and the pool-class form,
// plus a qualified one. Three findings.
namespace parsemi {
class worker_pool {
 public:
  static worker_pool& get();
  int num_workers() const;
};
using scheduler = worker_pool;
}  // namespace parsemi

int workers_via_alias() {
  using namespace parsemi;
  return scheduler::get().num_workers();  // finding: pre-pool spelling
}

int workers_via_pool_class() {
  return parsemi::worker_pool::get().num_workers();  // finding: shim call
}

parsemi::worker_pool* stash_the_singleton() {
  parsemi::scheduler* s = &parsemi::scheduler::get();  // finding: hard-wired
  return s;
}
