// Fixture: every operation here is an implicit seq_cst — all flagged.
#include <atomic>

int bad_member_calls(std::atomic<int>& a) {
  a.store(1);                 // flagged
  a.fetch_add(2);             // flagged
  return a.load();            // flagged
}

void bad_operator_forms() {
  std::atomic<int> count{0};
  count += 1;                 // flagged
  count++;                    // flagged
  ++count;                    // flagged
  count = 5;                  // flagged
}
