// Fixture: the sanctioned parallel-body idioms — per-index partition,
// atomics, body-local accumulators, and a waived degenerate range.
#include <atomic>
#include <cstddef>

template <class F>
void parallel_for(size_t lo, size_t hi, F&& f);

void per_index_partition(long* out, size_t n) {
  parallel_for(0, n, [&](size_t i) {
    out[i] = static_cast<long>(i);  // partitioned: one writer per index
  });
}

long atomic_accumulator(size_t n) {
  std::atomic<long> sum{0};
  parallel_for(0, n, [&](size_t i) {
    sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
  });
  return sum.load(std::memory_order_relaxed);
}

void body_locals_are_fine(long* out, size_t n) {
  parallel_for(0, n, [&](size_t i) {
    long x = 0;
    size_t lo = i, hi = i + 1;  // multi-declarator body locals
    for (size_t j = lo; j < hi; ++j) x += static_cast<long>(j);
    out[i] = x;
  });
}

int waived_singleton(long* out) {
  int calls = 0;
  // parsemi-check: allow(parallel-capture) -- singleton range, one writer
  parallel_for(0, 1, [&](size_t i) { out[i] = 1; ++calls; });
  return calls;
}
