// Fixture: the sanctioned parallel-body idioms — per-index partition,
// atomics, body-local accumulators, literal degenerate ranges, disjoint
// par_do branches, and one genuinely racy counter under a waiver.
#include <atomic>
#include <cstddef>

template <class F>
void parallel_for(size_t lo, size_t hi, F&& f);
template <class F>
void parallel_for_blocks(size_t blocks, F&& f);
template <class L, class R>
void par_do(L&& l, R&& r);

void per_index_partition(long* out, size_t n) {
  parallel_for(0, n, [&](size_t i) {
    out[i] = static_cast<long>(i);  // partitioned: one writer per index
  });
}

long atomic_accumulator(size_t n) {
  std::atomic<long> sum{0};
  parallel_for(0, n, [&](size_t i) {
    sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
  });
  return sum.load(std::memory_order_relaxed);
}

void body_locals_are_fine(long* out, size_t n) {
  parallel_for(0, n, [&](size_t i) {
    long x = 0;
    size_t lo = i, hi = i + 1;  // multi-declarator body locals
    for (size_t j = lo; j < hi; ++j) x += static_cast<long>(j);
    out[i] = x;
  });
}

int degenerate_ranges_run_one_task(long* out) {
  int calls = 0;
  parallel_for(0, 1, [&](size_t i) { out[i] = 1; ++calls; });  // one task
  parallel_for(3, 3, [&](size_t i) { out[i] = 2; ++calls; });  // zero tasks
  parallel_for_blocks(1, [&](size_t b) { out[b] = 3; ++calls; });
  return calls;
}

void disjoint_par_do_branches(long& left, long& right) {
  par_do([&] { left = 1; }, [&] { right = 2; });  // sole owner per branch
}

int waived_shared_counter(long* out, size_t n) {
  int calls = 0;
  // parsemi-check: allow(parallel-capture) -- stats counter; torn reads ok
  parallel_for(0, n, [&](size_t i) { out[i] = 3; ++calls; });
  return calls;
}
