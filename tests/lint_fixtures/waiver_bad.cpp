// Fixture: malformed waivers are themselves findings.
#include <atomic>

void missing_reason(std::atomic<int>& a) {
  // parsemi-check: allow(atomics-order)
  a.store(1);  // the waiver above has no reason: both lines produce findings
}

void unknown_rule(std::atomic<int>& a) {
  // parsemi-check: allow(no-such-rule) -- because
  a.store(2, std::memory_order_relaxed);
}
