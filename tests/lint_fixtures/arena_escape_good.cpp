// Fixture: arena uses the escape analysis must prove safe — values
// computed from the allocation (the shapes that used to need "value, not
// a pointer" waivers), unscoped allocations, and rebinding away the
// taint. Nothing flagged.
struct arena {
  template <class T>
  T* alloc(unsigned long n);
};
struct arena_scope {
  explicit arena_scope(arena& a);
  ~arena_scope();
};

long used_and_dropped(arena& a, unsigned long n) {
  arena_scope scope(a);
  int* tmp = a.alloc<int>(n);
  long sum = 0;
  for (unsigned long i = 0; i < n; ++i) sum += tmp[i];
  return sum;  // returns a value, not the allocation
}

int value_not_pointer(arena& a, unsigned long n) {
  arena_scope scope(a);
  int* tmp = a.alloc<int>(n);
  tmp[0] = 7;
  return tmp[0] + 1;  // element value: computed FROM the memory, clean
}

int* unscoped_alloc_may_escape(arena& a, unsigned long n) {
  int* out = a.alloc<int>(n);  // no arena_scope active: caller's contract
  return out;
}

int* rebound_is_clean(arena& a, int* stable, unsigned long n) {
  arena_scope scope(a);
  int* p = a.alloc<int>(n);
  p[0] = 1;
  p = stable;  // re-pointed at caller-owned memory: taint cleared
  return p;
}
