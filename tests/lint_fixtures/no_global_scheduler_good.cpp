// Fixture: the sanctioned pool-routing idioms — take a worker_pool& as a
// parameter, call default_pool() explicitly, route through params.pool, and
// a waived shim call (compat-test style). Zero hard findings.
namespace parsemi {
class worker_pool {
 public:
  static worker_pool& get();
  int num_workers() const;
  template <class F>
  void run(F&& f);
};
worker_pool& default_pool();
struct semisort_params {
  worker_pool* pool = nullptr;
};
}  // namespace parsemi

int workers_of(parsemi::worker_pool& pool) {  // pool passed in: routable
  return pool.num_workers();
}

int workers_of_default() {
  return parsemi::default_pool().num_workers();  // explicit, not the shim
}

void route_via_params(parsemi::worker_pool& pool) {
  parsemi::semisort_params params;
  params.pool = &pool;  // pipeline routing, no global named
}

// `get` on something that is not the scheduler singleton is fine.
struct registry {
  static registry& get();
  int value = 0;
};
int other_get() { return registry::get().value; }

int waived_compat_check() {
  using namespace parsemi;
  // parsemi-check: allow(no-global-scheduler) -- shim compat test needs it
  return worker_pool::get().num_workers();
}
