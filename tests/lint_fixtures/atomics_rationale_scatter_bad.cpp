// Fixture (file name contains "scatter"): an explicit-order fetch_add in a
// loop without a nearby rationale comment is flagged.
#include <atomic>

// NOTE: the blank lines below matter — the rule searches 4 lines above the
// call for a comment, so the loop body must sit clear of this header.




void hot_loop(std::atomic<long>& cursor, int n) {
  long acc = 0;
  for (int i = 0; i < n; ++i) {
    acc += cursor.fetch_add(1, std::memory_order_relaxed);
  }
  (void)acc;
}
