// The headline differential matrix for the front-end dispatch
// (core/dispatch.h): every dispatch path × every derived operator ×
// Table 1-shaped key distributions × sched-fuzz schedules, proptest-driven
// with shrinking on mismatch.
//
// Contract asserted per configuration, against the pinned general
// pipeline:
//   * stable paths (counting/adaptive-when-accepted): byte-identical to
//     the stable sort by key — the strongest form of determinism — at
//     every worker count, fuzzed schedule, and entry point (copying and
//     in-place);
//   * unstable path: group-equivalent — exact per-key multiset equality
//     plus contiguous groups;
//   * derived operators (count_by_key, group_by_index, collect_reduce):
//     results equal to the general pipeline's up to the operators'
//     documented order freedom.
// Key modes cover both sides of the probe: pre-hashed keys (must reject
// and fall back), raw dense keys (one-pass tier), and wide dense keys
// (the two 16-bit-digit radix tier).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <sstream>
#include <utility>
#include <vector>

#include "core/collect_reduce.h"
#include "core/group_by.h"
#include "core/semisort.h"
#include "hashing/hash64.h"
#include "proptest.h"
#include "test_helpers.h"
#include "util/rng.h"
#include "workloads/distributions.h"

namespace parsemi {
namespace {

using strategy = semisort_params::dispatch_strategy;

struct dd_config {
  size_t n = 0;
  distribution_spec spec{distribution_kind::uniform, 1000};
  int key_mode = 0;  // 0 = hashed, 1 = raw (dense-ish), 2 = wide dense
  uint64_t data_seed = 0;
  uint64_t sched_seed = 0;
  int workers = 0;
};

dd_config generate(rng& r) {
  dd_config c;
  c.n = 2000 + proptest::log_uniform_u64(r, 1, 40000);
  auto kind = static_cast<distribution_kind>(r.next_below(3));
  // Parameters drawn around n so raw keys land on both sides of the
  // density bound (span < 2n) — the probe's accept and reject branches
  // both get exercised by mode 1.
  uint64_t param = 1 + r.next_below(4 * c.n);
  c.spec = {kind, param};
  c.key_mode = static_cast<int>(proptest::pick(r, {0, 1, 1, 2}));
  c.data_seed = r.next();
  c.sched_seed = sched_fuzz::kCompiledIn ? (r.next() | 1) : 0;
  c.workers = proptest::pick(r, {0, 1, 2, 4});
  return c;
}

std::vector<record> build_input(const dd_config& c) {
  switch (c.key_mode) {
    case 0: return generate_records(c.n, c.spec, c.data_seed);
    case 1: return generate_records_raw(c.n, c.spec, c.data_seed);
    default: {
      // Wide dense domain: width > 2^16 (two-pass tier) but < 2n when n
      // allows; smaller n makes it ineligible, exercising the fallback.
      uint64_t width = 70000 + c.data_seed % 100000;
      uint64_t base = c.data_seed % 1000;
      std::vector<record> in(c.n);
      for (size_t i = 0; i < c.n; ++i) {
        in[i] = record{base + (i * 2654435761ull) % width,
                       static_cast<uint64_t>(i)};
      }
      return in;
    }
  }
}

std::string describe(const dd_config& c) {
  std::ostringstream os;
  os << c.spec.name() << "(" << c.spec.parameter << ") n=" << c.n
     << " key_mode=" << c.key_mode << " data_seed=" << c.data_seed
     << " sched_seed=" << c.sched_seed << " workers=" << c.workers;
  return os.str();
}

std::optional<std::string> all_paths_agree(const dd_config& c) {
  proptest::scoped_workers w(c.workers);
  sched_fuzz::scoped_enable fuzz(c.sched_seed);
  auto in = build_input(c);
  std::span<const record> in_span(in);

  // General-pipeline baseline + the stable reference.
  semisort_params general_params;
  general_params.dispatch_with = strategy::general;
  general_params.seed = c.data_seed;
  std::vector<record> general_out(c.n);
  semisort_hashed(in_span, std::span<record>(general_out), record_key{},
                  general_params);
  if (!testing::valid_semisort(general_out, in_span))
    return "general baseline broke the semisort contract";
  auto want_counts = testing::key_counts(in_span, record_key{});
  std::vector<record> stable_ref(in);
  std::stable_sort(
      stable_ref.begin(), stable_ref.end(),
      [](const record& a, const record& b) { return a.key < b.key; });

  for (strategy s :
       {strategy::adaptive, strategy::counting, strategy::unstable}) {
    semisort_params params;
    params.dispatch_with = s;
    params.seed = c.data_seed;
    semisort_stats stats;
    params.stats = &stats;

    std::vector<record> out(c.n);
    semisort_hashed(in_span, std::span<record>(out), record_key{}, params);
    if (!testing::valid_semisort(out, in_span))
      return "semisort contract broken, strategy " +
             std::string(to_string(stats.dispatch_path_used));
    auto got_counts =
        testing::key_counts(std::span<const record>(out), record_key{});
    if (got_counts != want_counts)
      return "group sizes disagree with the general pipeline";
    if (stats.dispatch_path_used == dispatch_path::counting &&
        out != stable_ref) {
      return "counting path not byte-identical to the stable sort";
    }

    // The in-place entry must take the same path to the same answer.
    std::vector<record> data(in);
    semisort_stats inplace_stats;
    params.stats = &inplace_stats;
    semisort_hashed_inplace(std::span<record>(data), record_key{}, params);
    if (inplace_stats.dispatch_path_used != stats.dispatch_path_used)
      return "in-place entry chose a different dispatch path";
    if (!testing::valid_semisort(data, in_span))
      return "in-place semisort contract broken";
    if (stats.dispatch_path_used == dispatch_path::counting &&
        data != stable_ref) {
      return "in-place counting path not byte-identical to the stable sort";
    }
  }

  // --- derived operators: forced paths against the pinned general path ---
  std::vector<uint64_t> keys(c.n);
  for (size_t i = 0; i < c.n; ++i) keys[i] = in[i].key;
  auto hash = [](uint64_t v) { return hash64(v); };

  auto sorted_pairs = [](std::vector<std::pair<uint64_t, size_t>> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  auto general_counts =
      sorted_pairs(count_by_key(std::span<const uint64_t>(keys), hash,
                                std::equal_to<>{}, general_params));
  for (strategy s : {strategy::adaptive, strategy::unstable}) {
    semisort_params params;
    params.dispatch_with = s;
    auto got = sorted_pairs(count_by_key(std::span<const uint64_t>(keys),
                                         hash, std::equal_to<>{}, params));
    if (got != general_counts) return "count_by_key disagrees";
  }

  auto index_groups = [&](const grouped_indices& g) {
    std::map<uint64_t, std::vector<size_t>> by_key;
    for (size_t gi = 0; gi < g.num_groups(); ++gi) {
      auto grp = g.group(gi);
      std::vector<size_t> idx(grp.begin(), grp.end());
      std::sort(idx.begin(), idx.end());
      by_key[in[grp[0]].key] = std::move(idx);
    }
    return by_key;
  };
  auto general_groups =
      index_groups(group_by_index(in_span, record_key{}, general_params));
  for (strategy s : {strategy::adaptive, strategy::unstable}) {
    semisort_params params;
    params.dispatch_with = s;
    auto got = index_groups(group_by_index(in_span, record_key{}, params));
    if (got != general_groups) return "group_by_index disagrees";
  }

  std::vector<std::pair<uint64_t, uint64_t>> pairs(c.n);
  for (size_t i = 0; i < c.n; ++i) pairs[i] = {in[i].key, in[i].payload};
  auto sorted_sums = [](std::vector<std::pair<uint64_t, uint64_t>> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  auto general_sums = sorted_sums(collect_reduce(
      std::span<const std::pair<uint64_t, uint64_t>>(pairs), hash,
      [](uint64_t a, uint64_t b) { return a + b; }, uint64_t{0},
      std::equal_to<>{}, general_params));
  {
    semisort_params params;  // adaptive default flows through the tag spine
    auto got = sorted_sums(collect_reduce(
        std::span<const std::pair<uint64_t, uint64_t>>(pairs), hash,
        [](uint64_t a, uint64_t b) { return a + b; }, uint64_t{0},
        std::equal_to<>{}, params));
    if (got != general_sums) return "collect_reduce disagrees";
  }

  return std::nullopt;
}

std::vector<dd_config> shrink(const dd_config& c) {
  std::vector<dd_config> out;
  auto with = [&](auto mutate) {
    dd_config d = c;
    mutate(d);
    out.push_back(d);
  };
  if (c.sched_seed != 0) with([](dd_config& d) { d.sched_seed = 0; });
  if (c.workers != 1) with([](dd_config& d) { d.workers = 1; });
  for (uint64_t nn : proptest::shrink_toward(c.n, 2000)) {
    with([nn](dd_config& d) { d.n = nn; });
  }
  for (uint64_t pp : proptest::shrink_toward(c.spec.parameter, 1)) {
    with([pp](dd_config& d) { d.spec.parameter = pp; });
  }
  return out;
}

TEST(DispatchDifferential, PathsOperatorsDistributionsSchedules) {
  proptest::options opt;
  opt.trials = 10;
  opt.seed = 20260808;
  proptest::check<dd_config>(generate, all_paths_agree, shrink, describe,
                             opt);
}

}  // namespace
}  // namespace parsemi
