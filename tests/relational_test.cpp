// Tests for the relational operators (equi_join, group_aggregate).
#include "core/relational.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

#include "hashing/hash64.h"
#include "util/rng.h"
#include "workloads/record.h"

namespace parsemi {
namespace {

std::vector<record> relation(size_t n, uint64_t key_range, uint64_t seed) {
  std::vector<record> rows(n);
  rng r(seed);
  for (size_t i = 0; i < n; ++i)
    rows[i] = {hash64(r.next_below(key_range)), r.next_below(1000000)};
  return rows;
}

std::vector<join_row> reference_join(std::span<const record> left,
                                     std::span<const record> right) {
  std::vector<join_row> out;
  for (const auto& a : left)
    for (const auto& b : right)
      if (a.key == b.key) out.push_back({a.key, a.payload, b.payload});
  return out;
}

bool same_multiset(std::vector<join_row> a, std::vector<join_row> b) {
  auto less = [](const join_row& x, const join_row& y) {
    if (x.key != y.key) return x.key < y.key;
    if (x.left_value != y.left_value) return x.left_value < y.left_value;
    return x.right_value < y.right_value;
  };
  std::sort(a.begin(), a.end(), less);
  std::sort(b.begin(), b.end(), less);
  return a == b;
}

record_key key_of;
auto value_of = [](const record& r) { return r.payload; };

TEST(EquiJoin, MatchesNestedLoopReference) {
  auto left = relation(4000, 250, 1);
  auto right = relation(6000, 250, 2);
  auto got = equi_join(std::span<const record>(left),
                       std::span<const record>(right), key_of, value_of,
                       key_of, value_of);
  auto want = reference_join(left, right);
  EXPECT_TRUE(same_multiset(got, want));
}

TEST(EquiJoin, DisjointKeysEmptyResult) {
  auto left = relation(3000, 100, 3);
  std::vector<record> right(3000);
  rng r(4);
  for (auto& row : right) row = {hash64(1000000 + r.next_below(100)), 0};
  auto got = equi_join(std::span<const record>(left),
                       std::span<const record>(right), key_of, value_of,
                       key_of, value_of);
  EXPECT_TRUE(got.empty());
}

TEST(EquiJoin, EmptySides) {
  std::vector<record> empty;
  auto some = relation(1000, 10, 5);
  EXPECT_TRUE(equi_join(std::span<const record>(empty),
                        std::span<const record>(some), key_of, value_of,
                        key_of, value_of)
                  .empty());
  EXPECT_TRUE(equi_join(std::span<const record>(some),
                        std::span<const record>(empty), key_of, value_of,
                        key_of, value_of)
                  .empty());
}

TEST(EquiJoin, SkewedManyToMany) {
  // One hot key on both sides: output is the full cross product.
  std::vector<record> left(300, record{hash64(7), 0});
  std::vector<record> right(400, record{hash64(7), 0});
  for (size_t i = 0; i < left.size(); ++i) left[i].payload = i;
  for (size_t i = 0; i < right.size(); ++i) right[i].payload = i;
  auto got = equi_join(std::span<const record>(left),
                       std::span<const record>(right), key_of, value_of,
                       key_of, value_of);
  EXPECT_EQ(got.size(), 300u * 400u);
}

TEST(EquiJoin, OutputGroupedByKey) {
  auto left = relation(30000, 500, 6);
  auto right = relation(30000, 500, 7);
  auto got = equi_join(std::span<const record>(left),
                       std::span<const record>(right), key_of, value_of,
                       key_of, value_of);
  std::unordered_set<uint64_t> closed;
  size_t i = 0;
  while (i < got.size()) {
    uint64_t key = got[i].key;
    ASSERT_FALSE(closed.contains(key));
    closed.insert(key);
    while (i < got.size() && got[i].key == key) ++i;
  }
}

TEST(GroupAggregate, SumsMatchReference) {
  auto rows = relation(50000, 300, 8);
  auto got = group_aggregate(std::span<const record>(rows), key_of, value_of,
                             uint64_t{0},
                             [](uint64_t acc, uint64_t v) { return acc + v; });
  std::map<uint64_t, uint64_t> want;
  for (const auto& r : rows) want[r.key] += r.payload;
  ASSERT_EQ(got.size(), want.size());
  for (auto& [k, v] : got) ASSERT_EQ(v, want.at(k));
}

TEST(GroupAggregate, CountDistinctKeys) {
  auto rows = relation(40000, 123, 9);
  auto got = group_aggregate(std::span<const record>(rows), key_of, value_of,
                             size_t{0},
                             [](size_t acc, uint64_t) { return acc + 1; });
  size_t total = 0;
  for (auto& [k, c] : got) total += c;
  EXPECT_EQ(total, rows.size());
  EXPECT_LE(got.size(), 123u);
}

}  // namespace
}  // namespace parsemi
