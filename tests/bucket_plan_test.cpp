// Tests for Phase 2 — heavy/light classification and bucket layout.
#include "core/bucket_plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "hashing/hash64.h"
#include "util/rng.h"

namespace parsemi {
namespace {

semisort_params default_params() { return semisort_params{}; }

// Shared context: plans are arena-backed views, so they must not outlive
// the context they were built on. One static context keeps every test's
// plan valid for the binary's lifetime (the arena only grows).
pipeline_context& test_ctx() {
  static pipeline_context ctx;
  return ctx;
}

// A sorted sample with the given (key, count) runs.
std::vector<uint64_t> make_sample(
    std::vector<std::pair<uint64_t, size_t>> runs) {
  std::vector<uint64_t> s;
  for (auto& [key, count] : runs)
    for (size_t i = 0; i < count; ++i) s.push_back(key);
  std::sort(s.begin(), s.end());
  return s;
}

TEST(BucketPlan, HeavyKeysDetectedAtDelta) {
  auto params = default_params();  // delta = 16
  auto sample = make_sample({{hash64(1), 16}, {hash64(2), 15}, {hash64(3), 40}});
  auto plan = build_bucket_plan(std::span<const uint64_t>(sample), 1 << 20,
                                params, params.alpha, test_ctx());
  EXPECT_EQ(plan.num_heavy, 2u);  // counts 16 and 40; 15 is light
  EXPECT_TRUE(plan.heavy_table->contains(hash64(1)));
  EXPECT_FALSE(plan.heavy_table->contains(hash64(2)));
  EXPECT_TRUE(plan.heavy_table->contains(hash64(3)));
}

TEST(BucketPlan, NoSampleMeansNoHeavyAndOneLightBucketUniverse) {
  auto params = default_params();
  std::vector<uint64_t> empty;
  auto plan = build_bucket_plan(std::span<const uint64_t>(empty), 1000, params,
                                params.alpha, test_ctx());
  EXPECT_EQ(plan.num_heavy, 0u);
  EXPECT_GE(plan.num_light, 1u);
  // Every possible key maps to a valid bucket with nonzero capacity.
  for (uint64_t key : {uint64_t{0}, ~uint64_t{0}, hash64(5)}) {
    size_t b = plan.bucket_of(key);
    ASSERT_LT(b, plan.num_buckets());
    EXPECT_GT(plan.bucket_offset[b + 1], plan.bucket_offset[b]);
  }
}

TEST(BucketPlan, EveryRangeIsMapped) {
  auto params = default_params();
  rng r(4);
  std::vector<std::pair<uint64_t, size_t>> runs;
  for (int i = 0; i < 500; ++i) runs.push_back({r.next(), 1 + r.next_below(30)});
  auto sample = make_sample(runs);
  auto plan = build_bucket_plan(std::span<const uint64_t>(sample), 1 << 22,
                                params, params.alpha, test_ctx());
  size_t num_ranges = plan.range_to_light_bucket.size();
  for (size_t range = 0; range < num_ranges; ++range) {
    ASSERT_LT(plan.range_to_light_bucket[range], plan.num_light) << range;
  }
  // Range → bucket mapping must be monotone (ranges merge contiguously).
  for (size_t range = 1; range < num_ranges; ++range) {
    ASSERT_LE(plan.range_to_light_bucket[range - 1],
              plan.range_to_light_bucket[range]);
    ASSERT_LE(plan.range_to_light_bucket[range] -
                  plan.range_to_light_bucket[range - 1],
              1u);
  }
}

TEST(BucketPlan, OffsetsAreMonotoneAndCoverTotal) {
  auto params = default_params();
  auto sample = make_sample({{hash64(1), 100}, {hash64(2), 5}, {hash64(3), 20}});
  auto plan = build_bucket_plan(std::span<const uint64_t>(sample), 1 << 20,
                                params, params.alpha, test_ctx());
  ASSERT_EQ(plan.bucket_offset.size(), plan.num_buckets() + 1);
  EXPECT_EQ(plan.bucket_offset.front(), 0u);
  for (size_t b = 0; b < plan.num_buckets(); ++b)
    ASSERT_LE(plan.bucket_offset[b], plan.bucket_offset[b + 1]);
  EXPECT_EQ(plan.bucket_offset.back(), plan.total_slots);
  EXPECT_EQ(plan.bucket_offset[plan.num_heavy], plan.heavy_slots_end);
}

TEST(BucketPlan, HeavyBucketCapacityCoversEstimate) {
  auto params = default_params();
  size_t n = 1 << 24;
  auto sample = make_sample({{hash64(9), 300}});
  auto plan =
      build_bucket_plan(std::span<const uint64_t>(sample), n, params, params.alpha, test_ctx());
  ASSERT_EQ(plan.num_heavy, 1u);
  size_t cap = plan.bucket_offset[1] - plan.bucket_offset[0];
  EXPECT_GE(static_cast<double>(cap),
            params.alpha * f_estimate(300, n, params.sampling_p, params.c));
}

TEST(BucketPlan, MergingReducesLightBucketCount) {
  auto params = default_params();
  rng r(7);
  // 2000 light keys scattered uniformly: without merging there are 2^16
  // buckets; with merging, ~ (#samples / δ).
  std::vector<std::pair<uint64_t, size_t>> runs;
  for (int i = 0; i < 2000; ++i) runs.push_back({r.next(), 2});
  auto sample = make_sample(runs);

  auto merged = build_bucket_plan(std::span<const uint64_t>(sample), 1 << 22,
                                  params, params.alpha, test_ctx());
  semisort_params no_merge = params;
  no_merge.merge_light_buckets = false;
  auto unmerged = build_bucket_plan(std::span<const uint64_t>(sample), 1 << 22,
                                    no_merge, no_merge.alpha, test_ctx());
  EXPECT_EQ(unmerged.num_light, params.num_hash_ranges);
  EXPECT_LT(merged.num_light, unmerged.num_light / 10);
  // Merging also shrinks total allocated space (the §4 point of it).
  EXPECT_LT(merged.total_slots, unmerged.total_slots);
}

TEST(BucketPlan, MergedBucketsMeetDeltaSampleThreshold) {
  auto params = default_params();
  rng r(11);
  std::vector<std::pair<uint64_t, size_t>> runs;
  for (int i = 0; i < 5000; ++i) runs.push_back({r.next(), 1});
  auto sample = make_sample(runs);
  auto plan = build_bucket_plan(std::span<const uint64_t>(sample), 1 << 22,
                                params, params.alpha, test_ctx());

  // Re-derive each light bucket's sample count and check ≥ δ (all buckets;
  // the trailing bucket is folded into its predecessor when under-full).
  std::vector<size_t> bucket_samples(plan.num_light, 0);
  for (uint64_t key : sample) {
    if (plan.heavy_table->contains(key)) continue;
    bucket_samples[plan.range_to_light_bucket[key >> plan.range_shift]]++;
  }
  size_t total = 0;
  for (size_t j = 0; j < plan.num_light; ++j) {
    total += bucket_samples[j];
    EXPECT_GE(bucket_samples[j], params.delta) << "light bucket " << j;
  }
  EXPECT_EQ(total, sample.size());
}

TEST(BucketPlan, BucketOfRoutesHeavyAndLight) {
  auto params = default_params();
  auto sample = make_sample({{hash64(1), 50}, {hash64(2), 2}});
  auto plan = build_bucket_plan(std::span<const uint64_t>(sample), 1 << 20,
                                params, params.alpha, test_ctx());
  ASSERT_EQ(plan.num_heavy, 1u);
  EXPECT_LT(plan.bucket_of(hash64(1)), plan.num_heavy);    // heavy
  EXPECT_GE(plan.bucket_of(hash64(2)), plan.num_heavy);    // light
  EXPECT_GE(plan.bucket_of(hash64(12345)), plan.num_heavy);  // unseen ⇒ light
}

TEST(BucketPlan, PowerOfTwoCapacitiesWhenEnabled) {
  auto params = default_params();
  params.round_to_pow2 = true;  // the paper's rounding (default off here)
  auto sample = make_sample({{hash64(1), 64}, {hash64(2), 17}});
  auto plan = build_bucket_plan(std::span<const uint64_t>(sample), 1 << 20,
                                params, params.alpha, test_ctx());
  for (size_t b = 0; b < plan.num_buckets(); ++b) {
    size_t cap = plan.bucket_offset[b + 1] - plan.bucket_offset[b];
    ASSERT_EQ(cap & (cap - 1), 0u) << "bucket " << b;
  }
}

}  // namespace
}  // namespace parsemi
