// Exception propagation through the work-stealing scheduler: a throw in
// any task — inline branch, stolen branch, parallel_for body, deep in a
// nested region — must reach the spawning call site, and the pool must
// remain fully usable afterwards.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "scheduler/scheduler.h"

namespace parsemi {
namespace {

class SchedulerExceptions : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = num_workers();
    set_num_workers(4);
  }
  void TearDown() override { set_num_workers(saved_); }
  int saved_ = 1;
};

TEST_F(SchedulerExceptions, LeftBranchThrowPropagates) {
  std::atomic<bool> right_ran{false};
  EXPECT_THROW(
      par_do([] { throw std::runtime_error("left"); },
             [&] { right_ran.store(true, std::memory_order_relaxed); }),
      std::runtime_error);
  // The right branch is still executed to completion before the rethrow
  // (it lives on the forker's stack and may have been stolen).
  EXPECT_TRUE(right_ran.load(std::memory_order_relaxed));
}

TEST_F(SchedulerExceptions, RightBranchThrowPropagates) {
  std::atomic<bool> left_ran{false};
  EXPECT_THROW(par_do([&] { left_ran.store(true, std::memory_order_relaxed); },
                      [] { throw std::logic_error("right"); }),
               std::logic_error);
  EXPECT_TRUE(left_ran.load(std::memory_order_relaxed));
}

TEST_F(SchedulerExceptions, ExceptionTypeAndMessageSurvive) {
  try {
    par_do([] {}, [] { throw std::out_of_range("exact message"); });
    FAIL() << "no exception";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "exact message");
  }
}

TEST_F(SchedulerExceptions, ParallelForBodyThrowPropagates) {
  EXPECT_THROW(parallel_for(
                   0, 100000,
                   [](size_t i) {
                     if (i == 54321) throw std::runtime_error("body");
                   },
                   64),
               std::runtime_error);
}

TEST_F(SchedulerExceptions, DeeplyNestedThrowPropagates) {
  auto deep = [](auto&& self, int depth) -> void {
    if (depth == 0) throw std::runtime_error("leaf");
    par_do([&] { self(self, depth - 1); }, [] {});
  };
  EXPECT_THROW(deep(deep, 12), std::runtime_error);
}

TEST_F(SchedulerExceptions, PoolUsableAfterExceptions) {
  for (int round = 0; round < 20; ++round) {
    EXPECT_THROW(
        parallel_for(0, 10000,
                     [](size_t i) {
                       if (i == 5000) throw std::runtime_error("x");
                     },
                     16),
        std::runtime_error);
    std::atomic<int64_t> sum{0};
    parallel_for(0, 10000, [&](size_t i) { sum.fetch_add(static_cast<int64_t>(i), std::memory_order_relaxed); },
                 16);
    ASSERT_EQ(sum.load(std::memory_order_relaxed), 9999 * 10000 / 2) << "round " << round;
  }
}

TEST_F(SchedulerExceptions, BothBranchesThrowReportsOne) {
  // When both sides throw, one of the two exceptions is delivered (the
  // left one, by our documented ordering) and nothing leaks or terminates.
  try {
    par_do([] { throw std::runtime_error("left"); },
           [] { throw std::logic_error("right"); });
    FAIL() << "no exception";
  } catch (const std::runtime_error&) {
  } catch (const std::logic_error&) {
    // acceptable only if the left branch's throw was consumed first —
    // by the documented contract the left error wins, so reaching here
    // is a failure.
    FAIL() << "right exception delivered before left";
  }
}

}  // namespace
}  // namespace parsemi
