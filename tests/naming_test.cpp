// Tests for the naming problem primitive (§2).
#include "hashing/naming.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "hashing/hash64.h"
#include "util/rng.h"

namespace parsemi {
namespace {

void check_naming(const std::vector<uint64_t>& keys) {
  auto result = name_keys(std::span<const uint64_t>(keys));
  ASSERT_EQ(result.labels.size(), keys.size());

  // Labels must be consistent (same key ⇒ same label; different keys ⇒
  // different labels), dense, and num_distinct must be exact.
  std::unordered_map<uint64_t, uint32_t> key_to_label;
  std::unordered_set<uint32_t> used;
  for (size_t i = 0; i < keys.size(); ++i) {
    uint32_t label = result.labels[i];
    ASSERT_LT(label, result.num_distinct);
    auto [it, inserted] = key_to_label.emplace(keys[i], label);
    if (!inserted) {
      ASSERT_EQ(it->second, label) << "key " << keys[i];
    }
    used.insert(label);
  }
  EXPECT_EQ(key_to_label.size(), result.num_distinct);
  EXPECT_EQ(used.size(), result.num_distinct);  // dense: every label used
}

TEST(Naming, Empty) {
  auto result = name_keys(std::span<const uint64_t>());
  EXPECT_EQ(result.num_distinct, 0u);
  EXPECT_TRUE(result.labels.empty());
}

TEST(Naming, SingleKey) { check_naming({42}); }

TEST(Naming, AllSame) { check_naming(std::vector<uint64_t>(10000, 7)); }

TEST(Naming, AllDistinct) {
  std::vector<uint64_t> keys(50000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = hash64(i);
  check_naming(keys);
}

TEST(Naming, FewDistinct) {
  std::vector<uint64_t> keys(100000);
  rng r(1);
  for (auto& k : keys) k = hash64(r.next_below(37));
  check_naming(keys);
}

TEST(Naming, SentinelLikeKeys) {
  std::vector<uint64_t> keys;
  for (int i = 0; i < 1000; ++i) {
    keys.push_back(~0ULL);
    keys.push_back(0);
    keys.push_back(static_cast<uint64_t>(i));
  }
  check_naming(keys);
}

TEST(Naming, LabelsDeterministicForSameInput) {
  std::vector<uint64_t> keys(20000);
  rng r(2);
  for (auto& k : keys) k = hash64(r.next_below(500));
  auto a = name_keys(std::span<const uint64_t>(keys));
  auto b = name_keys(std::span<const uint64_t>(keys));
  EXPECT_EQ(a.num_distinct, b.num_distinct);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Naming, ExpectedDistinctHintDoesNotChangeResultValidity) {
  std::vector<uint64_t> keys(30000);
  rng r(3);
  for (auto& k : keys) k = hash64(r.next_below(100));
  auto result = name_keys(std::span<const uint64_t>(keys), 128);
  EXPECT_EQ(result.num_distinct, 100u);
}

}  // namespace
}  // namespace parsemi
