// Tests for group_by / group_by_hashed: boundary correctness on top of the
// semisort.
#include "core/group_by.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "test_helpers.h"
#include "workloads/distributions.h"

namespace parsemi {
namespace {

TEST(GroupBy, EmptyInput) {
  std::vector<record> in;
  auto g = group_by_hashed(std::span<const record>(in));
  EXPECT_EQ(g.num_groups(), 0u);
  EXPECT_TRUE(g.records.empty());
}

TEST(GroupBy, SingleGroup) {
  std::vector<record> in(1000, record{7, 0});
  auto g = group_by_hashed(std::span<const record>(in));
  ASSERT_EQ(g.num_groups(), 1u);
  EXPECT_EQ(g.group(0).size(), 1000u);
}

TEST(GroupBy, BoundariesPartitionTheOutput) {
  auto in = generate_records(120000, {distribution_kind::zipfian, 5000}, 3);
  auto g = group_by_hashed(std::span<const record>(in));
  ASSERT_GE(g.num_groups(), 1u);
  EXPECT_EQ(g.group_start.front(), 0u);
  EXPECT_EQ(g.group_start.back(), in.size());
  auto expected = testing::key_counts(std::span<const record>(in), record_key{});
  EXPECT_EQ(g.num_groups(), expected.size());
  for (size_t grp = 0; grp < g.num_groups(); ++grp) {
    auto span = g.group(grp);
    ASSERT_FALSE(span.empty());
    uint64_t key = span.front().key;
    for (const auto& r : span) ASSERT_EQ(r.key, key);
    ASSERT_EQ(span.size(), expected.at(key));
    // Adjacent groups have different keys.
    if (grp + 1 < g.num_groups()) {
      ASSERT_NE(key, g.group(grp + 1).front().key);
    }
  }
}

TEST(GroupBy, AllDistinctKeys) {
  std::vector<record> in(50000);
  for (size_t i = 0; i < in.size(); ++i) in[i] = {hash64(i), i};
  auto g = group_by_hashed(std::span<const record>(in));
  EXPECT_EQ(g.num_groups(), in.size());
}

TEST(GroupBy, GeneralApiStrings) {
  std::vector<std::string> names;
  for (int i = 0; i < 30000; ++i) names.push_back("user" + std::to_string(i % 97));
  auto g = group_by(std::span<const std::string>(names),
                    [](const std::string& s) -> const std::string& { return s; },
                    [](const std::string& s) { return hash_string(s); });
  EXPECT_EQ(g.num_groups(), 97u);
  size_t total = 0;
  for (size_t grp = 0; grp < g.num_groups(); ++grp) {
    auto span = g.group(grp);
    for (const auto& s : span) ASSERT_EQ(s, span.front());
    total += span.size();
  }
  EXPECT_EQ(total, names.size());
}

TEST(GroupBySorted, WithinGroupOrderingByPayload) {
  // Stable-semisort flavour: groups ordered internally by original index
  // (payload == input position in generate_records).
  auto in = generate_records(80000, {distribution_kind::exponential, 100}, 9);
  auto g = group_by_hashed_sorted(
      std::span<const record>(in), record_key{},
      [](const record& a, const record& b) { return a.payload < b.payload; });
  ASSERT_EQ(g.records.size(), in.size());
  size_t covered = 0;
  for (size_t grp = 0; grp < g.num_groups(); ++grp) {
    auto span = g.group(grp);
    for (size_t i = 1; i < span.size(); ++i) {
      ASSERT_EQ(span[i].key, span[0].key);
      ASSERT_LT(span[i - 1].payload, span[i].payload);
    }
    covered += span.size();
  }
  EXPECT_EQ(covered, in.size());
}

TEST(GroupBySorted, DescendingComparator) {
  auto in = generate_records(30000, {distribution_kind::uniform, 100}, 10);
  auto g = group_by_hashed_sorted(
      std::span<const record>(in), record_key{},
      [](const record& a, const record& b) { return a.payload > b.payload; });
  for (size_t grp = 0; grp < g.num_groups(); ++grp) {
    auto span = g.group(grp);
    for (size_t i = 1; i < span.size(); ++i)
      ASSERT_GT(span[i - 1].payload, span[i].payload);
  }
}

TEST(GroupByIndex, PermutationGroupsWithoutMovingRecords) {
  auto in = generate_records(100000, {distribution_kind::exponential, 250}, 11);
  auto g = group_by_index(std::span<const record>(in));
  ASSERT_EQ(g.order.size(), in.size());
  // order is a permutation of [0, n)
  std::vector<uint8_t> seen(in.size(), 0);
  for (size_t idx : g.order) {
    ASSERT_LT(idx, in.size());
    ASSERT_EQ(seen[idx], 0);
    seen[idx] = 1;
  }
  // groups hold equal keys, boundaries partition everything, and no key
  // spans two groups
  auto expected = testing::key_counts(std::span<const record>(in), record_key{});
  ASSERT_EQ(g.num_groups(), expected.size());
  size_t covered = 0;
  std::unordered_set<uint64_t> closed;
  for (size_t grp = 0; grp < g.num_groups(); ++grp) {
    auto span = g.group(grp);
    ASSERT_FALSE(span.empty());
    uint64_t key = in[span.front()].key;
    ASSERT_FALSE(closed.contains(key));
    closed.insert(key);
    for (size_t idx : span) ASSERT_EQ(in[idx].key, key);
    ASSERT_EQ(span.size(), expected.at(key));
    covered += span.size();
  }
  EXPECT_EQ(covered, in.size());
}

TEST(GroupByIndex, EmptyInput) {
  std::vector<record> in;
  auto g = group_by_index(std::span<const record>(in));
  EXPECT_EQ(g.num_groups(), 0u);
  EXPECT_TRUE(g.order.empty());
}

TEST(GroupBy, GroupSpansAreContiguousViews) {
  auto in = generate_records(20000, {distribution_kind::uniform, 50}, 4);
  auto g = group_by_hashed(std::span<const record>(in));
  size_t covered = 0;
  for (size_t grp = 0; grp < g.num_groups(); ++grp) {
    EXPECT_EQ(g.group(grp).data(), g.records.data() + g.group_start[grp]);
    covered += g.group(grp).size();
  }
  EXPECT_EQ(covered, in.size());
}

}  // namespace
}  // namespace parsemi
