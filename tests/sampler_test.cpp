// Tests for Phase 1's strided sampler.
#include "core/sampler.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hashing/hash64.h"
#include "util/rng.h"
#include "workloads/record.h"

namespace parsemi {
namespace {

std::vector<record> records_with_keys(const std::vector<uint64_t>& keys) {
  std::vector<record> v(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) v[i] = {keys[i], i};
  return v;
}

TEST(Sampler, SampleSizeIsFloorNP) {
  for (size_t n : {16ul, 100ul, 1000ul, 12345ul}) {
    std::vector<record> in(n, record{1, 1});
    auto s = sample_keys(std::span<const record>(in), record_key{}, 1.0 / 16,
                         rng(1));
    EXPECT_EQ(s.size(), static_cast<size_t>(static_cast<double>(n) / 16.0)) << n;
  }
}

TEST(Sampler, ZeroForTinyInput) {
  std::vector<record> in(3, record{1, 1});
  auto s =
      sample_keys(std::span<const record>(in), record_key{}, 1.0 / 16, rng(1));
  EXPECT_TRUE(s.empty());
}

TEST(Sampler, OnePerStrideExactly) {
  // With n = 160 and p = 1/16 there are 10 samples, sample i drawn from
  // records [16i, 16(i+1)). Tag each stride with a distinct key and check.
  constexpr size_t kN = 160;
  std::vector<uint64_t> keys(kN);
  for (size_t i = 0; i < kN; ++i) keys[i] = i / 16;  // stride id as key
  auto in = records_with_keys(keys);
  auto s =
      sample_keys(std::span<const record>(in), record_key{}, 1.0 / 16, rng(7));
  ASSERT_EQ(s.size(), 10u);
  for (size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s[i], i) << "stride " << i;
}

TEST(Sampler, DeterministicForFixedRng) {
  std::vector<record> in(10000);
  rng gen(3);
  for (size_t i = 0; i < in.size(); ++i) in[i] = {gen.next(), i};
  auto a = sample_keys(std::span<const record>(in), record_key{}, 1.0 / 16,
                       rng(55));
  auto b = sample_keys(std::span<const record>(in), record_key{}, 1.0 / 16,
                       rng(55));
  EXPECT_EQ(a, b);
  auto c = sample_keys(std::span<const record>(in), record_key{}, 1.0 / 16,
                       rng(56));
  EXPECT_NE(a, c);
}

TEST(Sampler, PerKeyExpectationMatchesP) {
  // A key occupying a fraction q of the input should get ≈ q·n·p samples.
  constexpr size_t kN = 1 << 20;
  std::vector<uint64_t> keys(kN);
  rng gen(9);
  for (auto& k : keys) k = gen.next_below(4);  // 4 keys, 25% each
  auto in = records_with_keys(keys);
  double total = 0;
  constexpr int kTrials = 8;
  std::unordered_map<uint64_t, size_t> counts;
  for (int t = 0; t < kTrials; ++t) {
    auto s = sample_keys(std::span<const record>(in), record_key{}, 1.0 / 16,
                         rng(100 + t));
    total += static_cast<double>(s.size());
    for (uint64_t k : s) counts[k]++;
  }
  double expected_per_key = total / 4.0;
  for (auto& [k, c] : counts)
    EXPECT_NEAR(static_cast<double>(c), expected_per_key,
                0.05 * expected_per_key)
        << "key " << k;
}

TEST(Sampler, DifferentSamplingProbabilities) {
  std::vector<record> in(100000, record{5, 5});
  for (double p : {0.5, 0.25, 1.0 / 64}) {
    auto s = sample_keys(std::span<const record>(in), record_key{}, p, rng(1));
    EXPECT_EQ(s.size(), static_cast<size_t>(100000 * p));
  }
}

}  // namespace
}  // namespace parsemi
