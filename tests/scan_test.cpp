// Tests for blocked parallel scan / reduce against sequential references.
#include "primitives/scan.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "scheduler/scheduler.h"
#include "util/rng.h"

namespace parsemi {
namespace {

std::vector<uint64_t> random_values(size_t n, uint64_t seed) {
  std::vector<uint64_t> v(n);
  rng r(seed);
  for (auto& x : v) x = r.next() % 1000;
  return v;
}

class ScanSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(ScanSizes, ExclusiveMatchesSequential) {
  size_t n = GetParam();
  auto v = random_values(n, n * 7 + 1);
  auto expected = v;
  uint64_t running = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t next = running + expected[i];
    expected[i] = running;
    running = next;
  }
  auto got = v;
  uint64_t total = scan_exclusive_inplace(std::span<uint64_t>(got));
  EXPECT_EQ(total, running);
  EXPECT_EQ(got, expected);
}

TEST_P(ScanSizes, InclusiveMatchesSequential) {
  size_t n = GetParam();
  auto v = random_values(n, n * 13 + 5);
  auto expected = v;
  uint64_t running = 0;
  for (size_t i = 0; i < n; ++i) {
    running += expected[i];
    expected[i] = running;
  }
  auto got = v;
  uint64_t total = scan_inclusive_inplace(std::span<uint64_t>(got));
  EXPECT_EQ(total, running);
  EXPECT_EQ(got, expected);
}

TEST_P(ScanSizes, ReduceMatchesAccumulate) {
  size_t n = GetParam();
  auto v = random_values(n, n + 99);
  uint64_t expected = std::accumulate(v.begin(), v.end(), uint64_t{0});
  EXPECT_EQ(reduce(std::span<const uint64_t>(v)), expected);
}

INSTANTIATE_TEST_SUITE_P(AcrossSizes, ScanSizes,
                         ::testing::Values(0, 1, 2, 3, 7, 100, 2047, 2048,
                                           2049, 10000, 131072, 1000003));

TEST(Scan, ExclusiveWithInit) {
  std::vector<int> v = {1, 2, 3, 4};
  int total = scan_exclusive_inplace(std::span<int>(v), 100);
  EXPECT_EQ(total, 110);
  EXPECT_EQ(v, (std::vector<int>{100, 101, 103, 106}));
}

TEST(Scan, InclusiveWithInit) {
  std::vector<int> v = {1, 2, 3, 4};
  int total = scan_inclusive_inplace(std::span<int>(v), 10);
  EXPECT_EQ(total, 20);
  EXPECT_EQ(v, (std::vector<int>{11, 13, 16, 20}));
}

TEST(Scan, AllZeros) {
  std::vector<uint64_t> v(100000, 0);
  EXPECT_EQ(scan_exclusive_inplace(std::span<uint64_t>(v)), 0u);
  for (uint64_t x : v) ASSERT_EQ(x, 0u);
}

TEST(Scan, DeterministicAcrossWorkerCounts) {
  auto v = random_values(300000, 4242);
  auto a = v;
  int original = num_workers();
  set_num_workers(1);
  uint64_t t1 = scan_exclusive_inplace(std::span<uint64_t>(a));
  auto b = v;
  set_num_workers(4);
  uint64_t t4 = scan_exclusive_inplace(std::span<uint64_t>(b));
  set_num_workers(original);
  EXPECT_EQ(t1, t4);
  EXPECT_EQ(a, b);
}

TEST(ReduceIndex, SumOfSquares) {
  uint64_t got = reduce_index<uint64_t>(
      1000, [](size_t i) { return static_cast<uint64_t>(i) * i; });
  uint64_t expected = 0;
  for (uint64_t i = 0; i < 1000; ++i) expected += i * i;
  EXPECT_EQ(got, expected);
}

TEST(CountIf, CountsMatchingIndices) {
  EXPECT_EQ(count_if_index(100000, [](size_t i) { return i % 3 == 0; }),
            33334u);
  EXPECT_EQ(count_if_index(0, [](size_t) { return true; }), 0u);
  EXPECT_EQ(count_if_index(17, [](size_t) { return false; }), 0u);
}

}  // namespace
}  // namespace parsemi
