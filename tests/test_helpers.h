// Shared verification helpers for the parsemi test suite.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "workloads/record.h"

namespace parsemi::testing {

// Multiset equality: `out` contains exactly the records of `in`.
template <typename T>
bool is_permutation_of(std::span<const T> out, std::span<const T> in,
                       auto less) {
  if (out.size() != in.size()) return false;
  std::vector<T> a(out.begin(), out.end());
  std::vector<T> b(in.begin(), in.end());
  std::sort(a.begin(), a.end(), less);
  std::sort(b.begin(), b.end(), less);
  return std::equal(a.begin(), a.end(), b.begin(),
                    [&](const T& x, const T& y) {
                      return !less(x, y) && !less(y, x);
                    });
}

inline bool records_permutation(std::span<const record> out,
                                std::span<const record> in) {
  auto less = [](const record& a, const record& b) {
    return a.key != b.key ? a.key < b.key : a.payload < b.payload;
  };
  return is_permutation_of(out, in, less);
}

// The semisort contract: records with equal keys are contiguous — i.e. no
// key appears in two separated runs.
template <typename T, typename GetKey>
bool is_semisorted(std::span<const T> out, GetKey get_key) {
  std::unordered_set<uint64_t> closed;
  size_t i = 0;
  while (i < out.size()) {
    uint64_t key = get_key(out[i]);
    if (closed.contains(key)) return false;
    closed.insert(key);
    while (i < out.size() && get_key(out[i]) == key) ++i;
  }
  return true;
}

inline bool records_semisorted(std::span<const record> out) {
  return is_semisorted(out, record_key{});
}

// Exact key multiplicities of an input.
template <typename T, typename GetKey>
std::unordered_map<uint64_t, size_t> key_counts(std::span<const T> in,
                                                GetKey get_key) {
  std::unordered_map<uint64_t, size_t> counts;
  counts.reserve(in.size());
  for (const T& r : in) counts[get_key(r)]++;
  return counts;
}

// Full semisort validation: permutation + contiguous groups + group sizes
// matching the input multiplicities.
inline bool valid_semisort(std::span<const record> out,
                           std::span<const record> in) {
  return records_permutation(out, in) && records_semisorted(out);
}

}  // namespace parsemi::testing
