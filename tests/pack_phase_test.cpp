// Tests for Phase 5 — the interval pack of the heavy region plus the
// per-bucket copy of the light region.
#include "core/pack_phase.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/bucket_plan.h"
#include "core/local_sort.h"
#include "core/sampler.h"
#include "core/scatter.h"
#include "sort/radix_sort.h"
#include "test_helpers.h"
#include "util/rng.h"
#include "workloads/distributions.h"

namespace parsemi {
namespace {

// Shared context: plans are arena-backed views tied to the context they
// were built on; a static one keeps them valid for the binary's lifetime.
pipeline_context& test_ctx() {
  static pipeline_context ctx;
  return ctx;
}

// Runs phases 1-4 and returns everything pack_output needs.
struct staged {
  bucket_plan plan;
  scatter_storage<record> storage;
  std::vector<size_t> light_counts;
  std::vector<record> input;
};

staged stage_through_phase4(size_t n, distribution_spec spec,
                            semisort_params params) {
  auto in = generate_records(n, spec, 7);
  rng base(3);
  auto sample = sample_keys(std::span<const record>(in), record_key{},
                            params.sampling_p, base);
  radix_sort_u64(std::span<uint64_t>(sample));
  auto plan = build_bucket_plan(std::span<const uint64_t>(sample), n, params,
                                params.alpha, test_ctx());
  scatter_storage<record> storage(plan.total_slots, rng(5).next() | 1);
  EXPECT_EQ(scatter_records(std::span<const record>(in), storage, plan,
                            record_key{}, params, rng(9)),
            scatter_result::ok);
  std::vector<size_t> light_counts(plan.num_light);
  local_sort_light_buckets(storage, plan, record_key{}, params,
                           std::span<size_t>(light_counts));
  return {std::move(plan), std::move(storage), std::move(light_counts),
          std::move(in)};
}

void check_pack(size_t n, distribution_spec spec, semisort_params params) {
  auto st = stage_through_phase4(n, spec, params);
  std::vector<record> out(n);
  size_t written = pack_output(st.storage, st.plan,
                               std::span<const size_t>(st.light_counts),
                               std::span<record>(out), params, test_ctx());
  ASSERT_EQ(written, n);
  EXPECT_TRUE(testing::valid_semisort(out, st.input));
}

TEST(PackPhase, MixedHeavyLight) {
  check_pack(120000, {distribution_kind::exponential, 400}, {});
}

TEST(PackPhase, AllLight) {
  check_pack(120000, {distribution_kind::uniform, 1u << 30}, {});
}

TEST(PackPhase, AllHeavy) {
  check_pack(120000, {distribution_kind::uniform, 5}, {});
}

TEST(PackPhase, SingleInterval) {
  semisort_params params;
  params.pack_intervals = 1;
  check_pack(80000, {distribution_kind::exponential, 200}, params);
}

TEST(PackPhase, MoreIntervalsThanSlots) {
  semisort_params params;
  params.pack_intervals = 1u << 30;
  check_pack(50000, {distribution_kind::zipfian, 1000}, params);
}

TEST(PackPhase, HeavyRecordsKeepBucketContiguity) {
  // Interval boundaries cut across bucket boundaries; packed output must
  // still keep each heavy key's records contiguous.
  semisort_params params;
  params.pack_intervals = 17;  // deliberately unaligned with bucket sizes
  auto st = stage_through_phase4(100000, {distribution_kind::uniform, 20},
                                 params);
  ASSERT_GT(st.plan.num_heavy, 0u);
  std::vector<record> out(100000);
  size_t written = pack_output(st.storage, st.plan,
                               std::span<const size_t>(st.light_counts),
                               std::span<record>(out), params, test_ctx());
  ASSERT_EQ(written, out.size());
  EXPECT_TRUE(testing::records_semisorted(out));
}

TEST(PackPhase, EmptyLightRegion) {
  // All-heavy input: the light buckets exist but are empty, and the light
  // copy loop must be a no-op that still lands the totals correctly.
  auto st = stage_through_phase4(60000, {distribution_kind::uniform, 2}, {});
  size_t light_total = 0;
  for (size_t c : st.light_counts) light_total += c;
  ASSERT_EQ(light_total, 0u);
  std::vector<record> out(60000);
  EXPECT_EQ(pack_output(st.storage, st.plan,
                        std::span<const size_t>(st.light_counts),
                        std::span<record>(out), semisort_params{}, test_ctx()),
            60000u);
  EXPECT_TRUE(testing::valid_semisort(out, st.input));
}

}  // namespace
}  // namespace parsemi
