// Differential tests for the SIMD abstraction (util/simd.h): every
// dispatched entry point must be bit-exact with its scalar reference in
// simd::scalar:: over property-generated inputs, the compile-time sorting
// networks (core/local_sort.h) must sort every permutation (exhaustively
// for n <= 8, randomized and duplicate-heavy for 9..16) in agreement with
// std::stable_sort's key order, and the end-to-end engine must report
// per-phase widths that honor the stats contract in core/params.h.
#include "util/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "core/local_sort.h"
#include "core/semisort.h"
#include "test_helpers.h"
#include "util/rng.h"
#include "workloads/distributions.h"

namespace parsemi {
namespace {

// ------------------------------------------------------------- match_key4

// Fill a synthetic slot array (stride bytes per record, key in the leading
// qword) with random keys, planting `needle` according to `plant_mask`.
template <size_t Stride>
std::vector<unsigned char> make_slots(rng& r, uint64_t needle,
                                      unsigned plant_mask) {
  std::vector<unsigned char> bytes(4 * Stride);
  for (unsigned lane = 0; lane < 4; ++lane) {
    uint64_t k = (plant_mask >> lane) & 1u ? needle : r.next();
    if (k == needle && !((plant_mask >> lane) & 1u)) k ^= 1;  // no accidents
    std::memcpy(bytes.data() + lane * Stride, &k, sizeof(k));
    // Payload bytes are noise the kernel must ignore.
    for (size_t b = sizeof(k); b < Stride; ++b)
      bytes[lane * Stride + b] = static_cast<unsigned char>(r.next());
  }
  return bytes;
}

template <size_t Stride>
void check_match_key4_all_masks() {
  rng r(Stride * 7919);
  const uint64_t needle = r.next();
  for (unsigned mask = 0; mask < 16; ++mask) {
    for (int rep = 0; rep < 64; ++rep) {
      auto slots = make_slots<Stride>(r, needle, mask);
      unsigned scalar_m =
          simd::scalar::match_key4(slots.data(), Stride, needle);
      unsigned dispatched_m = simd::match_key4<Stride>(slots.data(), needle);
      ASSERT_EQ(scalar_m, mask);
      ASSERT_EQ(dispatched_m, scalar_m)
          << "stride " << Stride << " mask " << mask;
    }
  }
}

TEST(SimdMatchKey4, Stride16DispatchedEqualsScalarOnEveryMask) {
  // 16 bytes = the key-CAS record layouts — the stride with a vector form.
  check_match_key4_all_masks<16>();
}

TEST(SimdMatchKey4, OtherStridesDispatchedEqualsScalar) {
  check_match_key4_all_masks<8>();
  check_match_key4_all_masks<24>();
  check_match_key4_all_masks<32>();
}

TEST(SimdMatchKey4, RandomInputsAgree) {
  rng r(11);
  for (int rep = 0; rep < 2000; ++rep) {
    std::array<uint64_t, 8> words;
    // Tiny alphabet so needle collisions with arbitrary lane subsets occur.
    for (auto& w : words) w = r.next_below(4);
    uint64_t needle = r.next_below(4);
    ASSERT_EQ(simd::match_key4<16>(words.data(), needle),
              simd::scalar::match_key4(words.data(), 16, needle));
  }
}

TEST(SimdMatchKey4, ProbeWidthFollowsTheTier) {
  // The stats contract: vector prescan only exists for 16-byte records;
  // everything else reports the 64-bit scalar tier.
  static_assert(simd::probe_width<16>() ==
                (simd::kEnabled ? simd::kWidthBits : 64));
  static_assert(simd::probe_width<24>() == 64);
  static_assert(simd::probe_width<8>() == 64);
}

// ------------------------------------------------------------- run_len_u32

TEST(SimdRunLen, ExhaustiveMismatchPositions) {
  // A run of `len` heads then a mismatch at every position up to 40 — which
  // walks the mismatch through every vector lane and the scalar tail.
  for (uint32_t count = 0; count <= 40; ++count) {
    for (uint32_t len = 1; len <= count; ++len) {
      std::vector<uint32_t> ids(count, 7u);
      for (uint32_t i = len; i < count; ++i) ids[i] = 9u + i;
      uint32_t expect = simd::scalar::run_len_u32(ids.data(), count);
      ASSERT_EQ(expect, len);
      ASSERT_EQ(simd::run_len_u32(ids.data(), count), expect)
          << "count " << count << " len " << len;
    }
  }
  EXPECT_EQ(simd::run_len_u32(nullptr, 0), 0u);
}

TEST(SimdRunLen, RandomRunStructuresAgree) {
  rng r(23);
  for (int rep = 0; rep < 500; ++rep) {
    uint32_t count = static_cast<uint32_t>(r.next_below(120));
    std::vector<uint32_t> ids(count);
    // Duplicate-heavy alphabet: long runs happen organically.
    for (auto& id : ids) id = static_cast<uint32_t>(r.next_below(3));
    uint32_t got = simd::run_len_u32(ids.data(), count);
    ASSERT_EQ(got, simd::scalar::run_len_u32(ids.data(), count));
    // And against first principles: ids[0..got) equal, ids[got] differs.
    for (uint32_t i = 1; i < got; ++i) ASSERT_EQ(ids[i], ids[0]);
    if (got < count) {
      ASSERT_NE(ids[got], ids[0]);
    }
  }
}

// -------------------------------------------------- occupied_prefix_len

TEST(SimdOccupiedPrefix, ExhaustiveHolePositions) {
  // Records of 16 bytes; the first hole (sentinel key) walks every
  // position so every vector lane and the scalar tail are exercised.
  constexpr uint64_t sentinel = 0xDEADBEEFCAFEF00Dull;
  rng r(41);
  for (size_t count = 0; count <= 40; ++count) {
    for (size_t hole = 0; hole <= count; ++hole) {
      std::vector<record> slots(count);
      for (size_t i = 0; i < count; ++i) {
        uint64_t k = r.next();
        if (k == sentinel) k ^= 1;
        slots[i] = {i < hole ? k : sentinel, r.next()};
      }
      size_t expect = simd::scalar::occupied_prefix_len(
          slots.data(), sizeof(record), count, sentinel);
      ASSERT_EQ(expect, hole) << "count " << count;
      ASSERT_EQ(simd::occupied_prefix_len<sizeof(record)>(slots.data(), count,
                                                          sentinel),
                expect)
          << "count " << count << " hole " << hole;
    }
  }
  EXPECT_EQ(simd::occupied_prefix_len<16>(nullptr, 0, sentinel), 0u);
}

TEST(SimdHolePrefix, ExhaustiveRunEndPositions) {
  // The dual scan: a leading run of sentinels ending at every position.
  constexpr uint64_t sentinel = 0xDEADBEEFCAFEF00Dull;
  rng r(59);
  for (size_t count = 0; count <= 40; ++count) {
    for (size_t holes = 0; holes <= count; ++holes) {
      std::vector<record> slots(count);
      for (size_t i = 0; i < count; ++i) {
        uint64_t k = r.next();
        if (k == sentinel) k ^= 1;
        slots[i] = {i < holes ? sentinel : k, r.next()};
      }
      size_t expect = simd::scalar::hole_prefix_len(
          slots.data(), sizeof(record), count, sentinel);
      ASSERT_EQ(expect, holes) << "count " << count;
      ASSERT_EQ(simd::hole_prefix_len<sizeof(record)>(slots.data(), count,
                                                      sentinel),
                expect)
          << "count " << count << " holes " << holes;
    }
  }
  EXPECT_EQ(simd::hole_prefix_len<16>(nullptr, 0, sentinel), 0u);
}

TEST(SimdOccupiedPrefix, RandomOccupancyAgrees) {
  constexpr uint64_t sentinel = 7u;
  rng r(43);
  for (int rep = 0; rep < 1000; ++rep) {
    size_t count = r.next_below(50);
    std::vector<record> slots(count);
    // Dense-ish occupancy so prefixes of every length occur.
    for (auto& s : slots) s = {r.next_below(8), r.next()};
    ASSERT_EQ(simd::occupied_prefix_len<sizeof(record)>(slots.data(), count,
                                                        sentinel),
              simd::scalar::occupied_prefix_len(slots.data(), sizeof(record),
                                                count, sentinel));
  }
}

// ---------------------------------------------------------- msd_byte_sort

void check_msd_sorts(std::vector<record> input) {
  std::vector<record> expect = input;
  std::stable_sort(expect.begin(), expect.end(),
                   [](const record& a, const record& b) {
                     return a.key < b.key;
                   });
  std::vector<record> got = input;
  record_key get_key;
  if (got.size() <= internal::kMsdStackMax) {
    // In-contract sizes go through the engine's stack-scratch entry point.
    internal::msd_bucket_sort(std::span<record>(got), get_key);
  } else {
    // Above the entry point's cap (the engine dispatch routes such buckets
    // to introsort), drive the core byte passes with caller scratch to
    // test the algorithm at larger sizes too.
    size_t n = got.size();
    std::vector<uint64_t> keys(n), ktmp(n);
    std::vector<record> rtmp(n);
    for (size_t i = 0; i < n; ++i) keys[i] = get_key(got[i]);
    internal::msd_byte_sort(keys.data(), got.data(), n, 56, ktmp.data(),
                            rtmp.data());
  }
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].key, expect[i].key) << "at " << i;
  }
  ASSERT_TRUE(testing::records_permutation(got, input));
}

TEST(MsdByteSort, RandomFullWidthKeys) {
  rng r(47);
  for (size_t n : {size_t{17}, size_t{96}, size_t{100}, size_t{300},
                   size_t{1000}, size_t{4096}, size_t{6000}}) {
    std::vector<record> in(n);
    for (auto& rec : in) rec = {r.next(), r.next()};
    check_msd_sorts(std::move(in));
  }
}

TEST(MsdByteSort, DuplicateHeavyAndAdversarialKeys) {
  rng r(53);
  // Duplicate-heavy: the all-equal >16 groups terminate at shift 0.
  for (size_t n : {size_t{100}, size_t{512}}) {
    std::vector<record> dup(n);
    for (auto& rec : dup) rec = {r.next_below(5), r.next()};
    check_msd_sorts(std::move(dup));
  }
  // Keys differing only in the LAST byte: every level except the deepest
  // sees one giant group, forcing recursion through all 8 byte passes.
  std::vector<record> deep(200);
  for (auto& rec : deep) rec = {0xAABBCCDD11223300ull | r.next_below(256),
                                r.next()};
  check_msd_sorts(std::move(deep));
  // All equal.
  std::vector<record> equal(300, record{42, 0});
  for (auto& rec : equal) rec.payload = r.next();
  check_msd_sorts(std::move(equal));
}

// ------------------------------------------------------------ copy_records

TEST(SimdCopyRecords, TriviallyCopyableMatchesElementLoop) {
  rng r(31);
  for (size_t count : {size_t{0}, size_t{1}, size_t{7}, size_t{129}}) {
    std::vector<record> src(count);
    for (auto& rec : src) rec = {r.next(), r.next()};
    std::vector<record> dst(count, record{0, 0});
    simd::copy_records(dst.data(), src.data(), count);
    EXPECT_TRUE(std::equal(src.begin(), src.end(), dst.begin()));
  }
}

TEST(SimdCopyRecords, NonTrivialTypeUsesAssignment) {
  std::vector<std::string> src = {"alpha", "beta", "gamma"};
  std::vector<std::string> dst(3);
  simd::copy_records(dst.data(), src.data(), 3);
  EXPECT_EQ(dst, src);
  EXPECT_EQ(src[0], "alpha");  // copied, not moved
}

// ------------------------------------------------------------------ cswap

TEST(SimdCswap, OrdersPairsAndKeepsPayloadsAttached) {
  uint64_t ka = 9, kb = 2;
  record ra{9, 100}, rb{2, 200};
  simd::cswap(ka, kb, ra, rb);
  EXPECT_EQ(ka, 2u);
  EXPECT_EQ(kb, 9u);
  EXPECT_EQ(ra, (record{2, 200}));
  EXPECT_EQ(rb, (record{9, 100}));
  // Already ordered (and the equal case): no movement.
  simd::cswap(ka, kb, ra, rb);
  EXPECT_EQ(ka, 2u);
  uint64_t kc = 5, kd = 5;
  record rc{5, 1}, rd{5, 2};
  simd::cswap(kc, kd, rc, rd);
  EXPECT_EQ(rc, (record{5, 1}));
  EXPECT_EQ(rd, (record{5, 2}));
}

// ------------------------------------------------------- sorting networks

TEST(SortingNetworks, SchedulesAreWellFormed) {
  const auto& nets = internal::kSortingNetworks;
  for (size_t n = 2; n <= internal::kNetworkMax; ++n) {
    size_t len = nets.len[n];
    ASSERT_GT(len, 0u) << n;
    ASSERT_LE(len, size_t{63}) << n;
    for (size_t e = 0; e < len; ++e) {
      ASSERT_LT(nets.net[n][e].a, nets.net[n][e].b) << n;
      ASSERT_LT(nets.net[n][e].b, n) << n;
    }
  }
  // Batcher's count for n = 16 is exactly 63 compare-exchanges.
  EXPECT_EQ(nets.len[16], 63u);
}

struct identity_key {
  uint64_t operator()(const record& r) const { return r.key; }
};

void check_network_sorts(std::vector<record> input) {
  const size_t n = input.size();
  std::vector<record> expect = input;
  std::stable_sort(expect.begin(), expect.end(),
                   [](const record& a, const record& b) {
                     return a.key < b.key;
                   });
  identity_key get_key;
  internal::network_sort(input.data(), n, get_key);
  // The network is not stable, so compare the key sequence against
  // stable_sort's and the records as a multiset.
  for (size_t i = 0; i < n; ++i)
    ASSERT_EQ(input[i].key, expect[i].key) << "position " << i;
  ASSERT_TRUE(testing::records_permutation(input, expect));
}

TEST(SortingNetworks, EveryPermutationUpTo8Sorts) {
  // Exhaustive 0-1-principle-free proof for the small sizes: distinct keys,
  // every one of the n! input orders.
  for (size_t n = 2; n <= 8; ++n) {
    std::vector<uint64_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    do {
      std::vector<record> in(n);
      for (size_t i = 0; i < n; ++i)
        in[i] = {perm[i] * 1000 + 5, perm[i]};
      check_network_sorts(std::move(in));
    } while (std::next_permutation(perm.begin(), perm.end()));
  }
}

TEST(SortingNetworks, EveryDuplicatePatternUpTo5Sorts) {
  // Exhaustive over a 3-letter alphabet: all 3^n key tuples for n <= 5,
  // payloads tagged with position so multiset preservation is visible.
  for (size_t n = 2; n <= 5; ++n) {
    size_t tuples = 1;
    for (size_t i = 0; i < n; ++i) tuples *= 3;
    for (size_t t = 0; t < tuples; ++t) {
      std::vector<record> in(n);
      size_t code = t;
      for (size_t i = 0; i < n; ++i) {
        in[i] = {code % 3, i};
        code /= 3;
      }
      check_network_sorts(std::move(in));
    }
  }
}

TEST(SortingNetworks, RandomAndDuplicateHeavyInputs9To16) {
  rng r(47);
  for (size_t n = 9; n <= internal::kNetworkMax; ++n) {
    for (int rep = 0; rep < 400; ++rep) {
      std::vector<record> in(n);
      // Alternate full-width keys with a tiny alphabet (heavy duplicates —
      // the regime light buckets actually see).
      uint64_t alphabet = (rep % 2 == 0) ? ~uint64_t{0} : 3;
      for (size_t i = 0; i < n; ++i)
        in[i] = {alphabet == 3 ? r.next_below(3) : r.next(), i};
      check_network_sorts(std::move(in));
    }
  }
}

// --------------------------------------------------- end-to-end width stats

bool valid_width(size_t w) {
  return w == 0 || w == 64 || w == 128 || w == 256;
}

TEST(SimdStats, EngineReportsContractualWidths) {
  // Exponential(1000): heavy keys AND many small light buckets, so the
  // scatter, network local sort, and pack kernels all engage. The output
  // must still be a correct semisort (the kernels change schedules, never
  // results), and every reported width must be one of {0, 64, 128, 256},
  // bounded by the build's width.
  const size_t n = 200000;
  auto in = generate_records(n, {distribution_kind::exponential, 1000}, 17);
  std::vector<record> out(n);
  semisort_params params;
  semisort_stats stats;
  params.stats = &stats;
  semisort_hashed(std::span<const record>(in), std::span<record>(out),
                  record_key{}, params);
  EXPECT_TRUE(testing::records_semisorted(std::span<const record>(out)));
  EXPECT_TRUE(testing::records_permutation(out, in));
  for (size_t w : {stats.simd_hash_width, stats.simd_scatter_width,
                   stats.simd_local_sort_width, stats.simd_pack_width}) {
    EXPECT_TRUE(valid_width(w)) << w;
    EXPECT_LE(w, simd::kWidthBits);
  }
  // The sampler always hashes and the records are trivially copyable, so
  // hash and pack must report the build's tier, not "no kernel".
  EXPECT_EQ(stats.simd_hash_width, simd::kWidthBits);
  EXPECT_EQ(stats.simd_pack_width, simd::kWidthBits);
}

}  // namespace
}  // namespace parsemi
