// Interleaving stress for the phase-concurrent hash table: many workers
// race duplicate inserts under a perturbed schedule, then a find phase (the
// parallel_for join is the phase barrier) checks that exactly one insert per
// distinct key won, every key is findable with a value its writers agreed
// on, and size()/for_each agree. Exercises the reserved kEmpty sentinel key
// through its side slot as well.
#include "hashing/phase_concurrent_hash_table.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "proptest.h"
#include "scheduler/scheduler.h"
#include "util/rng.h"

namespace parsemi {
namespace {

// All writers of a key carry the same value (the table's contract).
uint64_t value_of(uint64_t key) { return splitmix64(key ^ 0x5eedULL); }

struct table_config {
  size_t n = 0;          // number of racing insert operations
  uint64_t distinct = 1; // distinct keys among them (heavy duplication)
  bool include_sentinel = false;
  uint64_t data_seed = 0;
  uint64_t sched_seed = 0;
  int workers = 0;
};

std::string describe(const table_config& c) {
  std::ostringstream os;
  os << "n=" << c.n << " distinct=" << c.distinct
     << " sentinel=" << c.include_sentinel << " data_seed=" << c.data_seed
     << " sched_seed=" << c.sched_seed << " workers=" << c.workers;
  return os.str();
}

table_config generate(rng& r) {
  table_config c;
  c.n = 2000 + proptest::log_uniform_u64(r, 1, 80000);
  c.distinct = 1 + proptest::log_uniform_u64(r, 1, c.n);
  c.include_sentinel = proptest::chance(r, 0.5);
  c.data_seed = r.next();
  c.sched_seed = sched_fuzz::kCompiledIn ? (r.next() | 1) : 0;
  c.workers = proptest::pick(r, {0, 2, 3, 4});
  return c;
}

std::vector<table_config> shrink(const table_config& c) {
  std::vector<table_config> out;
  if (c.sched_seed != 0) {
    table_config d = c;
    d.sched_seed = 0;
    out.push_back(d);
  }
  if (c.workers != 1) {
    table_config d = c;
    d.workers = 1;
    out.push_back(d);
  }
  for (uint64_t nn : proptest::shrink_toward(c.n, 2000)) {
    table_config d = c;
    d.n = nn;
    d.distinct = std::min<uint64_t>(d.distinct, d.n);
    out.push_back(d);
  }
  for (uint64_t dd : proptest::shrink_toward(c.distinct, 1)) {
    table_config d = c;
    d.distinct = dd == 0 ? 1 : dd;
    out.push_back(d);
  }
  if (c.include_sentinel) {
    table_config d = c;
    d.include_sentinel = false;
    out.push_back(d);
  }
  return out;
}

std::optional<std::string> table_invariants_hold(const table_config& c) {
  using table = phase_concurrent_hash_table<uint64_t>;
  proptest::scoped_workers w(c.workers);
  sched_fuzz::scoped_enable fuzz(c.sched_seed);

  // Key universe: `distinct` hashed keys (all writers of a key agree on the
  // value, as the semisort's heavy-key table guarantees). Optionally one of
  // them is rewritten to the reserved sentinel to drive the side slot.
  std::vector<uint64_t> universe(c.distinct);
  for (size_t i = 0; i < universe.size(); ++i) {
    universe[i] = hash64(c.data_seed + i);
    if (universe[i] == table::kEmpty) universe[i] = 1;  // keep slot 0 free...
  }
  if (c.include_sentinel) universe[0] = table::kEmpty;  // ...for this

  std::vector<uint64_t> ops(c.n);
  {
    rng r(c.data_seed ^ 0xabcdefULL);
    for (auto& k : ops) k = universe[r.next_below(universe.size())];
  }

  table t(c.distinct + 1);
  std::atomic<uint64_t> wins{0};
  // Insert phase: duplicates race; exactly one insert per key may return
  // true no matter how the schedule interleaves the CAS attempts.
  parallel_for(0, ops.size(), [&](size_t i) {
    if (t.insert(ops[i], value_of(ops[i]))) {
      wins.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::unordered_set<uint64_t> present(ops.begin(), ops.end());
  if (wins.load(std::memory_order_relaxed) != present.size()) {
    return "winning insert count != distinct keys inserted";
  }
  if (t.size() != present.size()) return "size() != distinct keys inserted";

  // Find phase (the parallel_for join above is the phase barrier).
  std::atomic<uint64_t> bad{0};
  parallel_for(0, ops.size(), [&](size_t i) {
    auto v = t.find(ops[i]);
    if (!v || *v != value_of(ops[i])) bad.fetch_add(1, std::memory_order_relaxed);
  });
  if (bad.load(std::memory_order_relaxed) != 0) return "a key was missing or had the wrong value";

  // A key never inserted must not be found.
  if (t.find(0xfeedfacecafef00dULL ^ c.data_seed) &&
      !present.count(0xfeedfacecafef00dULL ^ c.data_seed)) {
    return "found a key that was never inserted";
  }

  size_t enumerated = 0;
  bool enum_ok = true;
  t.for_each([&](uint64_t k, uint64_t v) {
    ++enumerated;
    if (!present.count(k) || v != value_of(k)) enum_ok = false;
  });
  if (!enum_ok) return "for_each produced an unknown key or wrong value";
  if (enumerated != present.size()) {
    return "for_each enumerated a different number of keys than size()";
  }
  return std::nullopt;
}

TEST(HashTableStress, RacingDuplicateInsertsUnderPerturbedSchedules) {
  proptest::options opt;
  opt.trials = 25;
  opt.seed = 271828182;
  proptest::check<table_config>(generate, table_invariants_hold, shrink,
                                describe, opt);
}

}  // namespace
}  // namespace parsemi
