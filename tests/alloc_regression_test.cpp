// Proves the arena-backed memory plan's central promise: once a
// pipeline_context is warm, repeated semisorts through it perform ZERO heap
// allocations — across every phase, including stats and phase-timing
// instrumentation. Counted by replacing the global operator new, so any
// hidden std::vector, std::string, or make_unique anywhere in the pipeline
// fails this test.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "core/collect_reduce.h"
#include "core/group_by.h"
#include "core/pipeline_context.h"
#include "core/semisort.h"
#include "scheduler/job_gateway.h"
#include "scheduler/scheduler.h"
#include "test_helpers.h"
#include "util/timer.h"
#include "workloads/distributions.h"

namespace {
std::atomic<size_t> g_heap_allocs{0};
size_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}
}  // namespace

// Replaceable global allocation functions ([new.delete]): every path into
// the heap bumps the counter. delete is not counted — the steady state is
// judged by allocations alone.
void* operator new(std::size_t sz) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) { return ::operator new(sz); }
void* operator new(std::size_t sz, std::align_val_t al) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  size_t align = std::max(sizeof(void*), static_cast<size_t>(al));
  if (posix_memalign(&p, align, sz ? sz : 1) != 0) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t sz, std::align_val_t al) {
  return ::operator new(sz, al);
}
// GCC's -Wmismatched-new-delete fires at inlined call sites because it
// pairs these definitions against the *default* operator new, not the
// malloc/posix_memalign replacements above; free() is the correct partner
// for both replacement allocators.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace parsemi {
namespace {

TEST(AllocRegression, SteadyStateSemisortMakesZeroHeapAllocations) {
  size_t n = 120000;
  auto in = generate_records(n, {distribution_kind::exponential, 1000}, 42);
  std::vector<record> out(n);

  pipeline_context ctx;
  phase_timer timings;
  semisort_stats stats;
  semisort_params params;
  params.context = &ctx;
  params.timings = &timings;
  params.stats = &stats;

  // Warm-up: grows the arena to the workload's footprint, spins up the
  // worker pool, interns the phase names.
  for (int round = 0; round < 3; ++round) {
    semisort_hashed(std::span<const record>(in), std::span<record>(out),
                    record_key{}, params);
  }
  ASSERT_TRUE(testing::valid_semisort(out, in));
  ASSERT_GT(stats.peak_scratch_bytes, 0u);
  ASSERT_GT(stats.arena_allocs, 0u);

  // Steady state: not one heap allocation across five full pipelines,
  // instrumentation included.
  size_t before = heap_allocs();
  for (int round = 0; round < 5; ++round) {
    semisort_hashed(std::span<const record>(in), std::span<record>(out),
                    record_key{}, params);
  }
  size_t after = heap_allocs();
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations leaked into the steady state";
  EXPECT_TRUE(testing::valid_semisort(out, in));
  // The memory plan stayed published throughout.
  EXPECT_GT(stats.peak_scratch_bytes, 0u);
  EXPECT_LE(stats.peak_scratch_bytes, stats.scratch_capacity_bytes);
}

TEST(AllocRegression, BudgetedSingleShardPathStaysZeroAlloc) {
  // A memory budget generous enough to fit the call must leave the
  // in-memory fast path untouched: the routing check (scratch model +
  // PARSEMI_MEMORY_BUDGET getenv probe) is allocation-free, and stats
  // report the run as exactly one shard.
  size_t n = 120000;
  auto in = generate_records(n, {distribution_kind::exponential, 1000}, 44);
  std::vector<record> out(n);

  pipeline_context ctx;
  semisort_stats stats;
  semisort_params params;
  params.context = &ctx;
  params.stats = &stats;
  params.memory_budget_bytes = size_t{16} << 30;  // fits easily: one shard

  for (int round = 0; round < 3; ++round) {
    semisort_hashed(std::span<const record>(in), std::span<record>(out),
                    record_key{}, params);
  }
  size_t before = heap_allocs();
  for (int round = 0; round < 5; ++round) {
    semisort_hashed(std::span<const record>(in), std::span<record>(out),
                    record_key{}, params);
  }
  size_t leaked = heap_allocs() - before;
  EXPECT_EQ(leaked, 0u)
      << leaked << " heap allocations on the budgeted single-shard path";
  EXPECT_EQ(stats.shards, 1u);
  EXPECT_TRUE(testing::valid_semisort(out, in));
}

TEST(AllocRegression, PlanReuseStaysZeroAllocAndZeroProbe) {
  // Plan reuse is the zero-warm-alloc contract in its strongest form: the
  // plan is built once up front, every later call skips the probe entirely
  // (stats.plan.reused with zero probe passes), and the execution itself
  // allocates nothing once the shared context is warm.
  size_t n = 120000;
  auto in = generate_records(n, {distribution_kind::exponential, 1000}, 45);
  std::vector<record> out(n);

  pipeline_context ctx;
  semisort_stats stats;
  semisort_params params;
  params.context = &ctx;
  params.stats = &stats;

  semisort_plan plan =
      plan_semisort_hashed(std::span<const record>(in), record_key{}, params);
  params.plan = &plan;

  for (int round = 0; round < 3; ++round) {
    semisort_hashed(std::span<const record>(in), std::span<record>(out),
                    record_key{}, params);
  }
  size_t before = heap_allocs();
  for (int round = 0; round < 5; ++round) {
    semisort_hashed(std::span<const record>(in), std::span<record>(out),
                    record_key{}, params);
  }
  size_t leaked = heap_allocs() - before;
  EXPECT_EQ(leaked, 0u)
      << leaked << " heap allocations on warm plan-reuse calls";
  EXPECT_TRUE(stats.plan.reused);
  EXPECT_EQ(stats.plan.probe_passes, 0u);
  EXPECT_EQ(stats.plan.probe_records, 0u);
  EXPECT_TRUE(testing::valid_semisort(out, in));
}

TEST(AllocRegression, EveryScatterPathZeroHeapAllocationsWhenWarm) {
  // The engine's buffered and blocked paths provision their write buffers /
  // count matrices from the same arena — forcing each path (plus the env
  // override's getenv probe) must stay zero-alloc once the shared context
  // has seen all of them.
  size_t n = 120000;
  auto in = generate_records(n, {distribution_kind::exponential, 1000}, 43);
  std::vector<record> out(n);

  pipeline_context ctx;
  semisort_stats stats;
  semisort_params params;
  params.context = &ctx;
  params.stats = &stats;

  constexpr semisort_params::scatter_strategy kStrategies[] = {
      semisort_params::scatter_strategy::cas,
      semisort_params::scatter_strategy::buffered,
      semisort_params::scatter_strategy::blocked,
      semisort_params::scatter_strategy::adaptive,
  };
  for (auto s : kStrategies) {  // warm every path's footprint
    params.scatter_with = s;
    for (int round = 0; round < 2; ++round) {
      semisort_hashed(std::span<const record>(in), std::span<record>(out),
                      record_key{}, params);
    }
  }
  for (auto s : kStrategies) {
    params.scatter_with = s;
    size_t before = heap_allocs();
    for (int round = 0; round < 3; ++round) {
      semisort_hashed(std::span<const record>(in), std::span<record>(out),
                      record_key{}, params);
    }
    size_t leaked = heap_allocs() - before;
    EXPECT_EQ(leaked, 0u) << leaked << " heap allocations on scatter strategy "
                          << static_cast<int>(s);
    EXPECT_TRUE(testing::valid_semisort(out, in));
  }
}

TEST(AllocRegression, SteadyStateInplaceSemisortMakesZeroHeapAllocations) {
  size_t n = 100000;
  auto base_input =
      generate_records(n, {distribution_kind::uniform, 1u << 24}, 7);
  std::vector<record> data(n);

  pipeline_context ctx;
  semisort_params params;
  params.context = &ctx;

  for (int round = 0; round < 3; ++round) {
    std::copy(base_input.begin(), base_input.end(), data.begin());
    semisort_hashed_inplace(std::span<record>(data), record_key{}, params);
  }
  size_t before = heap_allocs();
  for (int round = 0; round < 5; ++round) {
    std::copy(base_input.begin(), base_input.end(), data.begin());
    semisort_hashed_inplace(std::span<record>(data), record_key{}, params);
  }
  EXPECT_EQ(heap_allocs() - before, 0u);
  EXPECT_TRUE(testing::valid_semisort(data, base_input));
}

TEST(AllocRegression, DerivedOperatorAllocatesOnlyItsResults) {
  // group_by_index runs the tag spine on the shared context; in steady
  // state its only heap allocations are the two result vectors it returns.
  size_t n = 80000;
  auto in = generate_records(n, {distribution_kind::zipfian, 3000}, 9);

  pipeline_context ctx;
  semisort_params params;
  params.context = &ctx;

  for (int round = 0; round < 3; ++round) {
    auto g = group_by_index(std::span<const record>(in), record_key{}, params);
    ASSERT_GT(g.num_groups(), 0u);
  }
  size_t before = heap_allocs();
  auto g = group_by_index(std::span<const record>(in), record_key{}, params);
  size_t delta = heap_allocs() - before;
  EXPECT_GT(g.num_groups(), 0u);
  // order + group_start (and nothing proportional to the pipeline): a
  // handful of allocations, not hundreds.
  EXPECT_LE(delta, 8u) << delta << " heap allocations for one group_by_index";
}

TEST(AllocRegression, CountingDispatchPathsZeroHeapAllocationsWhenWarm) {
  // The front-end dispatch's counting kernels (core/dispatch.h) provision
  // count matrices, offsets, and staging buffers from the same arena as the
  // general pipeline. Forcing each dispatch strategy — across both the
  // one-pass tier (width ≤ 2^16) and the two-pass radix tier — must stay
  // zero-alloc once the shared context is warm.
  size_t n = 150000;
  // One-pass tier: dense domain of width 50000 < 2^16.
  auto narrow = generate_records_raw(n, {distribution_kind::uniform, 50000}, 5);
  // Two-pass radix tier: width 100000 > 2^16 (and < 2n, so still eligible).
  auto wide = generate_records_raw(n, {distribution_kind::uniform, 100000}, 6);
  std::vector<record> out(n);

  pipeline_context ctx;
  semisort_stats stats;
  semisort_params params;
  params.context = &ctx;
  params.stats = &stats;

  constexpr semisort_params::dispatch_strategy kStrategies[] = {
      semisort_params::dispatch_strategy::counting,
      semisort_params::dispatch_strategy::unstable,
      semisort_params::dispatch_strategy::adaptive,
  };
  for (auto s : kStrategies) {  // warm every path × tier footprint
    params.dispatch_with = s;
    for (int round = 0; round < 2; ++round) {
      semisort_hashed(std::span<const record>(narrow), std::span<record>(out),
                      record_key{}, params);
      semisort_hashed(std::span<const record>(wide), std::span<record>(out),
                      record_key{}, params);
    }
  }
  for (auto s : kStrategies) {
    params.dispatch_with = s;
    size_t before = heap_allocs();
    for (int round = 0; round < 3; ++round) {
      semisort_hashed(std::span<const record>(narrow), std::span<record>(out),
                      record_key{}, params);
      EXPECT_NE(stats.dispatch_path_used, dispatch_path::general);
      semisort_hashed(std::span<const record>(wide), std::span<record>(out),
                      record_key{}, params);
      EXPECT_NE(stats.dispatch_path_used, dispatch_path::general);
    }
    size_t leaked = heap_allocs() - before;
    EXPECT_EQ(leaked, 0u) << leaked
                          << " heap allocations on dispatch strategy "
                          << static_cast<int>(s);
    EXPECT_TRUE(testing::valid_semisort(out, wide));
  }
}

TEST(AllocRegression, CountByKeyOffsetsAllocatesOnlyTheResult) {
  // The offset-only count_by_key never materializes grouped data: in steady
  // state its only heap allocation is the result vector itself.
  size_t n = 100000;
  std::vector<uint64_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = (i * 31) % 1000;

  pipeline_context ctx;
  semisort_stats stats;
  semisort_params params;
  params.context = &ctx;
  params.stats = &stats;
  auto identity = [](uint64_t k) { return k; };

  for (int round = 0; round < 3; ++round) {
    auto counts = count_by_key(std::span<const uint64_t>(keys), identity,
                               std::equal_to<>{}, params);
    ASSERT_EQ(counts.size(), 1000u);
  }
  size_t before = heap_allocs();
  auto counts = count_by_key(std::span<const uint64_t>(keys), identity,
                             std::equal_to<>{}, params);
  size_t delta = heap_allocs() - before;
  EXPECT_EQ(stats.dispatch_path_used, dispatch_path::offsets);
  EXPECT_EQ(counts.size(), 1000u);
  // The result vector (and nothing proportional to n).
  EXPECT_LE(delta, 4u) << delta << " heap allocations for one count_by_key";
}

TEST(AllocRegression, WarmGatewayResubmissionMakesZeroHeapAllocations) {
  // The gateway's admission path is slot recycling over a preallocated
  // table and the closure is placement-new'd into the slot, so once the
  // pool, the gateway, and the pipeline_context are warm, a full
  // submit → execute → wait → release round trip allocates nothing.
  size_t n = 100000;
  auto in = generate_records(n, {distribution_kind::exponential, 1000}, 11);
  std::vector<record> out(n);

  worker_pool pool(4);
  job_gateway gateway(pool);
  pipeline_context ctx;
  semisort_params params;
  params.context = &ctx;

  auto round_trip = [&] {
    job_handle h = gateway.submit([pin = &in, pout = &out, pparams = &params] {
      semisort_hashed(std::span<const record>(*pin), std::span<record>(*pout),
                      record_key{}, *pparams);
    });
    h.wait();
    h.release();
  };
  for (int round = 0; round < 3; ++round) round_trip();  // warm everything

  size_t before = heap_allocs();
  for (int round = 0; round < 3; ++round) round_trip();
  size_t leaked = heap_allocs() - before;
  EXPECT_EQ(leaked, 0u)
      << leaked << " heap allocations on warm gateway submissions";
  EXPECT_TRUE(testing::valid_semisort(out, in));
}

}  // namespace
}  // namespace parsemi
