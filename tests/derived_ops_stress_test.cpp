// Stress for the derived-operator layer: every operator built on the
// tag-semisort spine is hammered through ONE shared pipeline_context across
// all trials, with varying sizes, key distributions, worker counts, and
// perturbed schedules. An arena rewind bug, a use-after-reset, or a stale
// checkpoint shows up here as a wrong result — and as a fault in the
// asan × stress CI lane, which runs this suite under AddressSanitizer.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/collect_reduce.h"
#include "core/group_by.h"
#include "core/mapreduce.h"
#include "core/relational.h"
#include "core/semisort.h"
#include "hashing/hash64.h"
#include "proptest.h"
#include "scheduler/sched_fuzz.h"
#include "workloads/distributions.h"

namespace parsemi {
namespace {

// The context every trial shares — reuse across wildly different workloads
// is exactly what this suite exists to break.
pipeline_context& shared_ctx() {
  static pipeline_context ctx;
  return ctx;
}

struct ops_config {
  size_t n = 1000;
  uint64_t distinct = 100;
  int op = 0;  // 0..7, see property()
  int workers = 0;
  uint64_t fuzz_seed = 0;  // 0 = schedule untouched
  uint64_t data_seed = 1;
};

ops_config generate(rng& r) {
  ops_config c;
  c.n = proptest::log_uniform_u64(r, 64, 60000);
  c.distinct = proptest::log_uniform_u64(r, 1, c.n);
  c.op = static_cast<int>(r.next_below(8));
  c.workers = static_cast<int>(proptest::pick(r, {0, 0, 2, 4}));
  c.fuzz_seed = proptest::chance(r, 0.4) ? r.next() | 1 : 0;
  c.data_seed = r.next();
  return c;
}

std::string describe(const ops_config& c) {
  std::ostringstream os;
  os << "op=" << c.op << " n=" << c.n << " distinct=" << c.distinct
     << " workers=" << c.workers << " fuzz=" << c.fuzz_seed << " data="
     << c.data_seed;
  return os.str();
}

std::vector<ops_config> shrink(const ops_config& c) {
  std::vector<ops_config> out;
  for (uint64_t n : proptest::shrink_toward(c.n, 64)) {
    ops_config d = c;
    d.n = n;
    d.distinct = std::min<uint64_t>(d.distinct, n);
    out.push_back(d);
  }
  for (uint64_t k : proptest::shrink_toward(c.distinct, 1)) {
    ops_config d = c;
    d.distinct = k;
    out.push_back(d);
  }
  if (c.fuzz_seed != 0) {
    ops_config d = c;
    d.fuzz_seed = 0;
    out.push_back(d);
  }
  if (c.workers != 0) {
    ops_config d = c;
    d.workers = 0;
    out.push_back(d);
  }
  return out;
}

// (key, value) rows with keys hashed from [0, distinct).
std::vector<record> make_rows(const ops_config& c, uint64_t salt) {
  std::vector<record> rows(c.n);
  rng r(splitmix64(c.data_seed + salt));
  for (size_t i = 0; i < c.n; ++i)
    rows[i] = {hash64(r.next_below(c.distinct)), r.next_below(1000)};
  return rows;
}

std::unordered_map<uint64_t, size_t> key_counts(std::span<const record> rows) {
  std::unordered_map<uint64_t, size_t> m;
  for (const auto& r : rows) m[r.key]++;
  return m;
}

std::optional<std::string> property(const ops_config& c) {
  proptest::scoped_workers workers(c.workers);
  sched_fuzz::scoped_enable fuzz(c.fuzz_seed);
  semisort_params params;
  params.context = &shared_ctx();
  auto rows = make_rows(c, 0);
  auto counts = key_counts(rows);

  switch (c.op) {
    case 0: {  // group_by_hashed
      auto g = group_by_hashed(std::span<const record>(rows), record_key{},
                               params);
      if (g.records.size() != rows.size()) return "group_by_hashed lost rows";
      if (g.num_groups() != counts.size()) return "wrong group count";
      for (size_t grp = 0; grp < g.num_groups(); ++grp) {
        auto span = g.group(grp);
        for (const auto& r : span)
          if (r.key != span.front().key) return "mixed keys in a group";
        if (counts[span.front().key] != span.size())
          return "group size mismatch";
      }
      return std::nullopt;
    }
    case 1: {  // group_by_index
      auto g = group_by_index(std::span<const record>(rows), record_key{},
                              params);
      if (g.order.size() != rows.size()) return "order is not a permutation";
      std::vector<bool> seen(rows.size(), false);
      for (size_t i : g.order) {
        if (i >= rows.size() || seen[i]) return "order is not a permutation";
        seen[i] = true;
      }
      if (g.num_groups() != counts.size()) return "wrong group count";
      for (size_t grp = 0; grp < g.num_groups(); ++grp) {
        auto idx = g.group(grp);
        uint64_t key = rows[idx.front()].key;
        for (size_t i : idx)
          if (rows[i].key != key) return "mixed keys in a group";
        if (counts[key] != idx.size()) return "group size mismatch";
      }
      return std::nullopt;
    }
    case 2: {  // collect_reduce (sum of payloads per key)
      std::vector<std::pair<uint64_t, uint64_t>> pairs(rows.size());
      for (size_t i = 0; i < rows.size(); ++i)
        pairs[i] = {rows[i].key, rows[i].payload};
      std::unordered_map<uint64_t, uint64_t> expect;
      for (auto& [k, v] : pairs) expect[k] += v;
      auto got = collect_reduce(
          std::span<const std::pair<uint64_t, uint64_t>>(pairs),
          [](uint64_t k) { return k; },
          [](uint64_t a, uint64_t b) { return a + b; }, uint64_t{0},
          std::equal_to<>{}, params);
      if (got.size() != expect.size()) return "wrong distinct-key count";
      for (auto& [k, v] : got) {
        auto it = expect.find(k);
        if (it == expect.end() || it->second != v) return "wrong reduced sum";
      }
      return std::nullopt;
    }
    case 3: {  // count_by_key
      std::vector<uint64_t> keys(rows.size());
      for (size_t i = 0; i < rows.size(); ++i) keys[i] = rows[i].key;
      auto got = count_by_key(std::span<const uint64_t>(keys),
                              [](uint64_t k) { return k; }, std::equal_to<>{},
                              params);
      if (got.size() != counts.size()) return "wrong distinct-key count";
      for (auto& [k, cnt] : got) {
        auto it = counts.find(k);
        if (it == counts.end() || it->second != cnt) return "wrong count";
      }
      return std::nullopt;
    }
    case 4: {  // equi_join — keep groups small so the output stays linear
      ops_config jc = c;
      jc.distinct = std::max<uint64_t>(c.distinct, c.n / 8 + 1);
      auto left = make_rows(jc, 1);
      auto right = make_rows(jc, 2);
      auto lc = key_counts(left);
      auto rc = key_counts(right);
      size_t expect_rows = 0;
      for (auto& [k, cnt] : lc) {
        auto it = rc.find(k);
        if (it != rc.end()) expect_rows += cnt * it->second;
      }
      auto out = equi_join(
          std::span<const record>(left), std::span<const record>(right),
          [](const record& r) { return r.key; },
          [](const record& r) { return r.payload; },
          [](const record& r) { return r.key; },
          [](const record& r) { return r.payload; }, params);
      if (out.size() != expect_rows) return "wrong join cardinality";
      for (const auto& row : out) {
        if (lc.find(row.key) == lc.end() || rc.find(row.key) == rc.end())
          return "join row with unmatched key";
      }
      return std::nullopt;
    }
    case 5: {  // group_aggregate (sum)
      std::unordered_map<uint64_t, uint64_t> expect;
      for (const auto& r : rows) expect[r.key] += r.payload;
      auto got = group_aggregate(
          std::span<const record>(rows), record_key{},
          [](const record& r) { return r.payload; }, uint64_t{0},
          [](uint64_t acc, uint64_t v) { return acc + v; }, params);
      if (got.size() != expect.size()) return "wrong distinct-key count";
      for (auto& [k, v] : got) {
        auto it = expect.find(k);
        if (it == expect.end() || it->second != v) return "wrong aggregate";
      }
      return std::nullopt;
    }
    case 6: {  // map_reduce: word-count over the payloads
      std::unordered_map<uint64_t, uint64_t> expect;
      for (const auto& r : rows) expect[r.payload % 37]++;
      auto got = map_reduce<record, uint64_t, uint64_t, uint64_t>(
          std::span<const record>(rows),
          [](const record& r, auto emit) { emit(r.payload % 37, uint64_t{1}); },
          [](uint64_t k) { return hash64(k); },
          [](uint64_t acc, const uint64_t& v) { return acc + v; }, uint64_t{0},
          std::equal_to<>{}, params);
      if (got.size() != expect.size()) return "wrong distinct-key count";
      for (auto& [k, v] : got) {
        auto it = expect.find(k);
        if (it == expect.end() || it->second != v) return "wrong word count";
      }
      return std::nullopt;
    }
    default: {  // generic semisort with a colliding hash → repair path
      std::vector<uint64_t> keys(rows.size());
      for (size_t i = 0; i < rows.size(); ++i)
        keys[i] = rows[i].payload % std::max<uint64_t>(1, c.distinct);
      auto out = semisort(
          std::span<const uint64_t>(keys), [](uint64_t k) { return k; },
          [](uint64_t k) { return hash64(k % 17); },  // deliberate collisions
          std::equal_to<>{}, params);
      if (out.size() != keys.size()) return "semisort lost elements";
      std::unordered_map<uint64_t, size_t> expect;
      for (uint64_t k : keys) expect[k]++;
      std::unordered_map<uint64_t, size_t> got;
      size_t runs = 0;
      for (size_t i = 0; i < out.size(); ++i) {
        if (i == 0 || out[i] != out[i - 1]) ++runs;
        got[out[i]]++;
      }
      if (got != expect) return "semisort changed the multiset";
      // multiset equality + one run per distinct key ⇒ equal keys contiguous
      if (runs != expect.size()) return "equal keys not contiguous";
      return std::nullopt;
    }
  }
}

TEST(DerivedOpsStress, SharedContextAcrossAllOperators) {
  proptest::options opt;
  opt.trials = 24;
  opt.seed = 0xD0B5ED0C5ULL;
  proptest::check<ops_config>(generate, property, shrink, describe, opt);
}

}  // namespace
}  // namespace parsemi
