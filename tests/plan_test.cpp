// The plan layer's contracts (core/exec_plan.h, core/planner.h,
// core/executor.h):
//
//   * determinism — the same (input, params, seed) plans to byte-identical
//     serialize() output, including the sharded layout;
//   * the single-probe contract — a plan never pays more than one probe
//     pass, and a pinned-general plan pays none;
//   * reuse — a cached plan executes with zero probe passes and produces
//     an equivalent grouping via the same paths;
//   * binding — a plan is rejected (std::invalid_argument) for a call with
//     a different n or different planning-relevant params;
//   * overrides — forced scatter/dispatch strategies land in the plan
//     verbatim and the execution follows them.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/exec_plan.h"
#include "core/semisort.h"
#include "test_helpers.h"
#include "workloads/distributions.h"

namespace parsemi {
namespace {

constexpr size_t kN = 120000;

std::vector<record> hashed_input(uint64_t seed = 42) {
  return generate_records(kN, {distribution_kind::exponential, 1000}, seed);
}

TEST(PlanTest, SerializationIsDeterministic) {
  auto in = hashed_input();
  semisort_params params;
  semisort_plan a = plan_semisort_hashed(std::span<const record>(in),
                                         record_key{}, params);
  semisort_plan b = plan_semisort_hashed(std::span<const record>(in),
                                         record_key{}, params);
  EXPECT_EQ(a.serialize(), b.serialize());
  EXPECT_FALSE(a.serialize().empty());
  EXPECT_NE(a.serialize().find("semisort_plan v1"), std::string::npos);
}

TEST(PlanTest, ShardedSerializationIsDeterministic) {
  auto in = hashed_input(7);
  semisort_params params;
  params.memory_budget_bytes = 512 << 10;  // far below the footprint
  semisort_plan a = plan_semisort_hashed(std::span<const record>(in),
                                         record_key{}, params);
  semisort_plan b = plan_semisort_hashed(std::span<const record>(in),
                                         record_key{}, params);
  ASSERT_TRUE(a.sharded);
  EXPECT_GE(a.num_shards(), 2u);
  EXPECT_EQ(a.serialize(), b.serialize());
  // The shard layout is part of the serialized form.
  EXPECT_NE(a.serialize().find("shard_bounds ["), std::string::npos);
}

TEST(PlanTest, AtMostOneProbePass) {
  auto in = hashed_input();
  semisort_params params;
  semisort_plan plan = plan_semisort_hashed(std::span<const record>(in),
                                            record_key{}, params);
  EXPECT_LE(plan.probe_passes, 1u);
  // Hashed 64-bit keys: the adaptive strategy probes once and rejects.
  EXPECT_EQ(plan.probe_passes, 1u);
  EXPECT_FALSE(plan.domain_dense);
  EXPECT_EQ(plan.dispatch, dispatch_path::general);
  EXPECT_GT(plan.predicted_buckets, 0u);
}

TEST(PlanTest, PinnedGeneralPlansWithoutProbing) {
  auto in = hashed_input();
  semisort_params params;
  params.dispatch_with = semisort_params::dispatch_strategy::general;
  semisort_plan plan = plan_semisort_hashed(std::span<const record>(in),
                                            record_key{}, params);
  EXPECT_EQ(plan.probe_passes, 0u);
  EXPECT_EQ(plan.probe_records, 0u);
  EXPECT_EQ(plan.dispatch, dispatch_path::general);
}

TEST(PlanTest, ShardedRoutePaysOnlyTheShardSample) {
  auto in = hashed_input();
  semisort_params params;
  params.memory_budget_bytes = 512 << 10;
  semisort_plan plan = plan_semisort_hashed(std::span<const record>(in),
                                            record_key{}, params);
  ASSERT_TRUE(plan.sharded);
  EXPECT_EQ(plan.probe_passes, 1u);
  // The key-domain probe is skipped on this route; the probe accounting
  // reflects the strided shard sample only.
  EXPECT_FALSE(plan.domain_dense);
  EXPECT_LE(plan.probe_records, size_t{1} << 16);
  // The adaptive overlap default turns on whenever >= 2 shards spill.
  EXPECT_TRUE(plan.overlap_io);
}

TEST(PlanTest, DenseRawKeysPlanTheCountingPath) {
  auto raw = generate_records_raw(kN, {distribution_kind::uniform, 50000}, 5);
  semisort_params params;
  semisort_plan plan = plan_semisort_hashed(std::span<const record>(raw),
                                            record_key{}, params);
  EXPECT_EQ(plan.probe_passes, 1u);
  EXPECT_EQ(plan.probe_records, kN);  // full-input probe on acceptance
  ASSERT_TRUE(plan.domain_dense);
  EXPECT_EQ(plan.dispatch, dispatch_path::counting);
  EXPECT_EQ(plan.counting_passes, 1u);  // width 50000 fits the one-pass tier
  EXPECT_LE(plan.domain_width, 50000u);
}

TEST(PlanTest, ForcedScatterPathLandsInThePlan) {
  auto in = hashed_input();
  for (auto [strategy, path] :
       {std::pair{semisort_params::scatter_strategy::blocked,
                  scatter_path::blocked},
        std::pair{semisort_params::scatter_strategy::buffered,
                  scatter_path::buffered},
        std::pair{semisort_params::scatter_strategy::cas,
                  scatter_path::cas}}) {
    semisort_params params;
    params.scatter_with = strategy;
    semisort_plan plan = plan_semisort_hashed(std::span<const record>(in),
                                              record_key{}, params);
    EXPECT_EQ(plan.scatter, path);
    // The execution follows the pinned path.
    std::vector<record> out(kN);
    semisort_stats stats;
    params.stats = &stats;
    params.plan = &plan;
    semisort_hashed(std::span<const record>(in), std::span<record>(out),
                    record_key{}, params);
    EXPECT_EQ(stats.scatter_path_used, path);
    EXPECT_TRUE(testing::valid_semisort(out, in));
  }
}

TEST(PlanTest, ForcedUnstableDispatchLandsInThePlan) {
  auto raw = generate_records_raw(kN, {distribution_kind::uniform, 50000}, 6);
  semisort_params params;
  params.dispatch_with = semisort_params::dispatch_strategy::unstable;
  semisort_plan plan = plan_semisort_hashed(std::span<const record>(raw),
                                            record_key{}, params);
  EXPECT_EQ(plan.dispatch, dispatch_path::unstable);
  EXPECT_TRUE(plan.domain_dense);
}

TEST(PlanTest, ReuseSkipsProbesAndExecutesTheSamePaths) {
  auto in = hashed_input();
  std::vector<record> out_fresh(kN), out_reused(kN);

  semisort_stats fresh_stats;
  semisort_params params;
  params.stats = &fresh_stats;
  semisort_hashed(std::span<const record>(in), std::span<record>(out_fresh),
                  record_key{}, params);
  EXPECT_FALSE(fresh_stats.plan.reused);
  EXPECT_EQ(fresh_stats.plan.probe_passes, 1u);

  semisort_plan plan = plan_semisort_hashed(std::span<const record>(in),
                                            record_key{});
  semisort_stats reused_stats;
  semisort_params reuse_params;
  reuse_params.stats = &reused_stats;
  reuse_params.plan = &plan;
  semisort_hashed(std::span<const record>(in), std::span<record>(out_reused),
                  record_key{}, reuse_params);
  EXPECT_TRUE(reused_stats.plan.reused);
  EXPECT_EQ(reused_stats.plan.probe_passes, 0u);
  EXPECT_EQ(reused_stats.plan.probe_records, 0u);

  // Equivalent execution: same paths, both valid groupings of the input.
  EXPECT_EQ(fresh_stats.scatter_path_used, reused_stats.scatter_path_used);
  EXPECT_EQ(fresh_stats.dispatch_path_used, reused_stats.dispatch_path_used);
  EXPECT_TRUE(testing::valid_semisort(out_fresh, in));
  EXPECT_TRUE(testing::valid_semisort(out_reused, in));
}

TEST(PlanTest, ReusedShardedPlanExecutes) {
  auto in = hashed_input(11);
  semisort_params params;
  params.memory_budget_bytes = 512 << 10;
  semisort_plan plan = plan_semisort_hashed(std::span<const record>(in),
                                            record_key{}, params);
  ASSERT_TRUE(plan.sharded);
  ASSERT_GE(plan.num_shards(), 2u);

  std::vector<record> out(kN);
  semisort_stats stats;
  params.stats = &stats;
  params.plan = &plan;
  semisort_hashed(std::span<const record>(in), std::span<record>(out),
                  record_key{}, params);
  EXPECT_TRUE(stats.plan.reused);
  EXPECT_EQ(stats.plan.probe_passes, 0u);
  EXPECT_EQ(stats.shards, plan.num_shards());
  EXPECT_TRUE(testing::valid_semisort(out, in));
}

TEST(PlanTest, MismatchedBindingThrows) {
  auto in = hashed_input();
  semisort_plan plan =
      plan_semisort_hashed(std::span<const record>(in), record_key{});
  std::vector<record> out(kN - 1);
  semisort_params params;
  params.plan = &plan;
  // Different n than the plan was built for.
  EXPECT_THROW(
      semisort_hashed(std::span<const record>(in).subspan(0, kN - 1),
                      std::span<record>(out), record_key{}, params),
      std::invalid_argument);
}

TEST(PlanTest, MismatchedParamsFingerprintThrows) {
  auto in = hashed_input();
  semisort_plan plan =
      plan_semisort_hashed(std::span<const record>(in), record_key{});
  std::vector<record> out(kN);
  semisort_params params;
  params.seed = 999;  // planning-relevant: a serialized plan pins one run
  params.plan = &plan;
  EXPECT_THROW(semisort_hashed(std::span<const record>(in),
                               std::span<record>(out), record_key{}, params),
               std::invalid_argument);
}

TEST(PlanTest, PlanSummaryReachesStatsOnEveryRoute) {
  // Unsharded fresh call: the stats' nested plan{} mirrors the decision.
  auto in = hashed_input();
  std::vector<record> out(kN);
  semisort_stats stats;
  semisort_params params;
  params.stats = &stats;
  semisort_hashed(std::span<const record>(in), std::span<record>(out),
                  record_key{}, params);
  EXPECT_EQ(stats.plan.dispatch, dispatch_path::general);
  EXPECT_EQ(stats.plan.scatter, stats.scatter_path_used);
  EXPECT_EQ(stats.plan.shards, 1u);
  EXPECT_EQ(stats.plan.pool_workers, num_workers());

  // Sharded call: plan{} survives the driver's stats aggregation.
  params.memory_budget_bytes = 512 << 10;
  semisort_hashed(std::span<const record>(in), std::span<record>(out),
                  record_key{}, params);
  EXPECT_GE(stats.plan.shards, 2u);
  EXPECT_EQ(stats.plan.shards, stats.shards);
  EXPECT_EQ(stats.plan.probe_passes, 1u);
}

}  // namespace
}  // namespace parsemi
