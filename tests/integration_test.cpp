// Integration tests: the example applications' logic (word count shuffle,
// hash join, graph neighbor grouping) verified against sequential
// references, plus a full-pipeline determinism check.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/collect_reduce.h"
#include "core/group_by.h"
#include "core/semisort.h"
#include "test_helpers.h"
#include "util/rng.h"
#include "workloads/distributions.h"

namespace parsemi {
namespace {

// --- MapReduce word count (examples/wordcount_shuffle.cpp logic) ---
TEST(Integration, WordCountShuffleMatchesSequential) {
  std::vector<std::string> vocabulary = {"the", "a",  "of",    "parallel",
                                         "semisort", "is", "fast", "on",
                                         "many",     "cores"};
  rng r(1);
  std::vector<std::pair<std::string, uint64_t>> mapped;
  std::map<std::string, uint64_t> expected;
  for (int i = 0; i < 100000; ++i) {
    // Zipf-ish word frequencies.
    size_t w = 0;
    while (w + 1 < vocabulary.size() && r.next_below(2) == 0) ++w;
    mapped.emplace_back(vocabulary[w], 1);
    expected[vocabulary[w]] += 1;
  }
  auto counts = collect_reduce(
      std::span<const std::pair<std::string, uint64_t>>(mapped),
      [](const std::string& s) { return hash_string(s); },
      [](uint64_t a, uint64_t b) { return a + b; }, uint64_t{0});
  ASSERT_EQ(counts.size(), expected.size());
  for (auto& [word, count] : counts) ASSERT_EQ(count, expected.at(word));
}

// --- Hash join (examples/hash_join.cpp logic) ---
struct row {
  uint64_t key;
  uint64_t value;
};

std::vector<std::pair<uint64_t, uint64_t>> semisort_join(
    std::span<const row> left, std::span<const row> right) {
  // Join via semisorted concatenation: tag each row with its side, group by
  // key, then emit the cross product within each group.
  struct tagged {
    uint64_t key;
    uint64_t value;
    uint64_t side;
  };
  std::vector<tagged> all;
  all.reserve(left.size() + right.size());
  for (auto& r : left) all.push_back({r.key, r.value, 0});
  for (auto& r : right) all.push_back({r.key, r.value, 1});
  auto g = group_by_hashed(std::span<const tagged>(all),
                           [](const tagged& t) { return t.key; });
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (size_t grp = 0; grp < g.num_groups(); ++grp) {
    auto span = g.group(grp);
    for (auto& a : span)
      if (a.side == 0)
        for (auto& b : span)
          if (b.side == 1) out.emplace_back(a.value, b.value);
  }
  return out;
}

TEST(Integration, SemisortJoinMatchesNestedLoopJoin) {
  rng r(2);
  std::vector<row> left, right;
  for (int i = 0; i < 5000; ++i)
    left.push_back({hash64(r.next_below(300)), r.next_below(1000000)});
  for (int i = 0; i < 7000; ++i)
    right.push_back({hash64(r.next_below(300)), r.next_below(1000000)});

  auto got = semisort_join(left, right);

  std::vector<std::pair<uint64_t, uint64_t>> expected;
  for (auto& a : left)
    for (auto& b : right)
      if (a.key == b.key) expected.emplace_back(a.value, b.value);

  std::sort(got.begin(), got.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(got, expected);
}

// --- Graph neighbor grouping (examples/graph_neighbors.cpp logic) ---
TEST(Integration, EdgeGroupingBuildsCorrectAdjacency) {
  // Random multigraph edges (u, v); group by source to form adjacency
  // lists, compare against a sequential bucket build.
  rng r(3);
  constexpr uint64_t kVertices = 2000;
  std::vector<record> edges(150000);
  for (auto& e : edges)
    e = {hash64(r.next_below(kVertices)), r.next_below(kVertices)};

  auto g = group_by_hashed(std::span<const record>(edges));

  std::unordered_map<uint64_t, std::vector<uint64_t>> expected;
  for (auto& e : edges) expected[e.key].push_back(e.payload);

  ASSERT_EQ(g.num_groups(), expected.size());
  for (size_t grp = 0; grp < g.num_groups(); ++grp) {
    auto span = g.group(grp);
    auto& exp = expected.at(span.front().key);
    ASSERT_EQ(span.size(), exp.size());
    std::vector<uint64_t> got_neighbors;
    for (auto& e : span) got_neighbors.push_back(e.payload);
    std::sort(got_neighbors.begin(), got_neighbors.end());
    std::vector<uint64_t> exp_sorted = exp;
    std::sort(exp_sorted.begin(), exp_sorted.end());
    ASSERT_EQ(got_neighbors, exp_sorted);
  }
}

// --- Pipeline consistency: parallel semisort vs every sequential baseline
TEST(Integration, ParallelAgreesWithSequentialBaselinesOnGroups) {
  auto in = generate_records(60000, {distribution_kind::exponential, 300}, 4);
  auto par = semisort_hashed(std::span<const record>(in));
  ASSERT_TRUE(testing::valid_semisort(par, in));
  auto counts_par = testing::key_counts(std::span<const record>(par), record_key{});
  auto counts_in = testing::key_counts(std::span<const record>(in), record_key{});
  EXPECT_EQ(counts_par.size(), counts_in.size());
  for (auto& [k, c] : counts_in) ASSERT_EQ(counts_par.at(k), c);
}

}  // namespace
}  // namespace parsemi
