// Self-tests for the property-based testing framework: generator bounds and
// determinism, shrink-candidate structure, greedy shrinking convergence,
// and the env-variable replay knobs.
#include "proptest.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <set>
#include <vector>

namespace parsemi {
namespace {

TEST(PropGen, UniformRespectsBoundsAndIsDeterministic) {
  rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    uint64_t x = proptest::uniform_u64(a, 10, 20);
    EXPECT_GE(x, 10u);
    EXPECT_LE(x, 20u);
    EXPECT_EQ(x, proptest::uniform_u64(b, 10, 20));
  }
}

TEST(PropGen, LogUniformRespectsBoundsAndHitsSmallMagnitudes) {
  rng r(7);
  size_t below_4k = 0;
  for (int i = 0; i < 2000; ++i) {
    uint64_t x = proptest::log_uniform_u64(r, 100, 1 << 20);
    ASSERT_GE(x, 100u);
    ASSERT_LE(x, uint64_t{1} << 20);
    if (x < 4096) ++below_4k;
  }
  // A uniform draw would land below 4096 ~0.4% of the time; log-uniform
  // must hit small magnitudes a large fraction of the time.
  EXPECT_GT(below_4k, 200u);
}

TEST(PropGen, LogUniformDegenerateRange) {
  rng r(1);
  EXPECT_EQ(proptest::log_uniform_u64(r, 5, 5), 5u);
  EXPECT_EQ(proptest::log_uniform_u64(r, 9, 3), 9u);  // lo >= hi → lo
}

TEST(PropGen, PickAndChance) {
  rng r(3);
  for (int i = 0; i < 100; ++i) {
    int v = proptest::pick(r, {2, 5, 9});
    EXPECT_TRUE(v == 2 || v == 5 || v == 9);
  }
  int heads = 0;
  for (int i = 0; i < 1000; ++i) heads += proptest::chance(r, 0.5) ? 1 : 0;
  EXPECT_GT(heads, 350);
  EXPECT_LT(heads, 650);
}

TEST(PropShrink, CandidatesApproachTargetAndExcludeSelf) {
  auto cands = proptest::shrink_toward(800, 0);
  ASSERT_FALSE(cands.empty());
  EXPECT_EQ(cands.front(), 0u);  // boldest simplification first
  std::set<uint64_t> seen;
  for (uint64_t c : cands) {
    EXPECT_NE(c, 800u);
    EXPECT_LT(c, 800u);
    EXPECT_TRUE(seen.insert(c).second) << "duplicate candidate " << c;
  }
  EXPECT_TRUE(proptest::shrink_toward(5, 5).empty());
  // Works upward too (e.g. shrinking alpha toward a safer larger value).
  for (uint64_t c : proptest::shrink_toward(3, 64)) {
    EXPECT_GT(c, 3u);
    EXPECT_LE(c, 64u);
  }
}

struct toy_config {
  uint64_t n = 0;
};

TEST(PropRunner, GreedyShrinkConvergesToMinimalFailure) {
  // Property fails iff n >= 57; shrinking toward 0 must terminate exactly
  // at the failure boundary.
  proptest::options opt;
  opt.trials = 20;
  opt.seed = 1234;
  std::vector<proptest::failure> captured;
  opt.on_failure = [&](const proptest::failure& f) { captured.push_back(f); };

  std::optional<std::string> shrunk_to;
  proptest::check<toy_config>(
      [](rng& r) { return toy_config{proptest::uniform_u64(r, 0, 1000)}; },
      [&](const toy_config& c) -> std::optional<std::string> {
        if (c.n >= 57) return "n too big";
        return std::nullopt;
      },
      [](const toy_config& c) {
        std::vector<toy_config> out;
        for (uint64_t v : proptest::shrink_toward(c.n, 0))
          out.push_back(toy_config{v});
        return out;
      },
      [&](const toy_config& c) {
        shrunk_to = std::to_string(c.n);
        return "n=" + std::to_string(c.n);
      },
      opt);

  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].shrunk_config, "n=57");
  EXPECT_NE(captured[0].repro.find("PARSEMI_PROPTEST_SEED="),
            std::string::npos);
  EXPECT_NE(captured[0].repro.find("--gtest_filter=PropRunner."),
            std::string::npos);
}

TEST(PropRunner, PassingPropertyReportsNothing) {
  proptest::options opt;
  opt.trials = 10;
  bool failed = false;
  opt.on_failure = [&](const proptest::failure&) { failed = true; };
  proptest::check<toy_config>(
      [](rng& r) { return toy_config{proptest::uniform_u64(r, 0, 100)}; },
      [](const toy_config&) -> std::optional<std::string> {
        return std::nullopt;
      },
      [](const toy_config&) { return std::vector<toy_config>{}; },
      [](const toy_config& c) { return "n=" + std::to_string(c.n); }, opt);
  EXPECT_FALSE(failed);
}

TEST(PropRunner, EnvSeedReplaysExactlyOneTrial) {
  setenv("PARSEMI_PROPTEST_SEED", "99887766", 1);
  std::vector<uint64_t> generated;
  proptest::check<toy_config>(
      [&](rng& r) {
        toy_config c{r.next()};
        generated.push_back(c.n);
        return c;
      },
      [](const toy_config&) -> std::optional<std::string> {
        return std::nullopt;
      },
      [](const toy_config&) { return std::vector<toy_config>{}; },
      [](const toy_config&) { return std::string("toy"); });
  unsetenv("PARSEMI_PROPTEST_SEED");
  ASSERT_EQ(generated.size(), 1u);
  EXPECT_EQ(generated[0], rng(99887766).next());  // replay is bit-exact
}

TEST(PropRunner, EnvTrialsOverridesCount) {
  setenv("PARSEMI_PROPTEST_TRIALS", "3", 1);
  int runs = 0;
  proptest::check<toy_config>(
      [&](rng&) {
        ++runs;
        return toy_config{};
      },
      [](const toy_config&) -> std::optional<std::string> {
        return std::nullopt;
      },
      [](const toy_config&) { return std::vector<toy_config>{}; },
      [](const toy_config&) { return std::string("toy"); });
  unsetenv("PARSEMI_PROPTEST_TRIALS");
  EXPECT_EQ(runs, 3);
}

TEST(PropGuards, ScopedWorkersRestores) {
  int original = num_workers();
  {
    proptest::scoped_workers w(2);
    EXPECT_EQ(num_workers(), 2);
  }
  EXPECT_EQ(num_workers(), original);
}

}  // namespace
}  // namespace parsemi
