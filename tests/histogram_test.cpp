// Tests for the parallel histogram primitive.
#include "primitives/histogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace parsemi {
namespace {

class HistogramSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(HistogramSizes, MatchesSequentialCount) {
  size_t n = GetParam();
  constexpr size_t kBuckets = 97;
  std::vector<uint32_t> v(n);
  rng r(n + 41);
  for (auto& x : v) x = static_cast<uint32_t>(r.next_below(kBuckets));
  auto got = histogram(std::span<const uint32_t>(v), kBuckets,
                       [](uint32_t x) { return static_cast<size_t>(x); });
  std::vector<size_t> want(kBuckets, 0);
  for (uint32_t x : v) want[x]++;
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(AcrossSizes, HistogramSizes,
                         ::testing::Values(0, 1, 100, 4096, 100000, 1000003));

TEST(Histogram, SingleBucket) {
  std::vector<uint32_t> v(50000, 0);
  auto got = histogram(std::span<const uint32_t>(v), 1,
                       [](uint32_t) { return size_t{0}; });
  EXPECT_EQ(got, std::vector<size_t>{50000});
}

TEST(Histogram, EmptyBucketsStayZero) {
  std::vector<uint32_t> v(10000, 7);
  auto got = histogram(std::span<const uint32_t>(v), 16,
                       [](uint32_t x) { return static_cast<size_t>(x); });
  for (size_t k = 0; k < 16; ++k)
    EXPECT_EQ(got[k], k == 7 ? 10000u : 0u) << k;
}

TEST(Histogram, IndexVariantAgrees) {
  constexpr size_t kN = 200000, kBuckets = 256;
  auto got = histogram_index(kN, kBuckets,
                             [](size_t i) { return i % kBuckets; });
  for (size_t k = 0; k < kBuckets; ++k) {
    size_t want = kN / kBuckets + (k < kN % kBuckets ? 1 : 0);
    ASSERT_EQ(got[k], want) << k;
  }
}

TEST(Histogram, ManyBucketsFewElements) {
  std::vector<uint32_t> v = {5, 70000, 5};
  auto got = histogram(std::span<const uint32_t>(v), 1 << 17,
                       [](uint32_t x) { return static_cast<size_t>(x); });
  EXPECT_EQ(got[5], 2u);
  EXPECT_EQ(got[70000], 1u);
}

}  // namespace
}  // namespace parsemi
