// Tests for the parallel sample sort baseline.
#include "sort/sample_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "workloads/record.h"

namespace parsemi {
namespace {

class SampleSortSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(SampleSortSizes, SortsUniform) {
  size_t n = GetParam();
  std::vector<uint64_t> v(n);
  rng r(n + 1);
  for (auto& x : v) x = r.next();
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  sample_sort(std::span<uint64_t>(v));
  EXPECT_EQ(v, expected);
}

TEST_P(SampleSortSizes, SortsHeavilySkewed) {
  // Nearly all elements equal — the splitter degenerate case.
  size_t n = GetParam();
  std::vector<uint64_t> v(n);
  rng r(n + 5);
  for (auto& x : v) x = r.next_below(100) == 0 ? r.next() : 7777ULL;
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  sample_sort(std::span<uint64_t>(v));
  EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(AcrossSizes, SampleSortSizes,
                         ::testing::Values(0, 1, 2, 1000, 16384, 16385,
                                           200000, 1 << 20));

TEST(SampleSort, CustomComparatorDescending) {
  std::vector<int> v(100000);
  rng r(8);
  for (auto& x : v) x = static_cast<int>(r.next_below(1000000));
  sample_sort(std::span<int>(v), std::greater<int>{});
  for (size_t i = 1; i < v.size(); ++i) ASSERT_GE(v[i - 1], v[i]);
}

TEST(SampleSort, RecordsByKey) {
  std::vector<record> v(150000);
  rng r(12);
  for (size_t i = 0; i < v.size(); ++i)
    v[i] = {r.next_below(1 << 20), static_cast<uint64_t>(i)};
  uint64_t payload_sum = 0;
  for (auto& rec : v) payload_sum += rec.payload;
  sample_sort(std::span<record>(v), record_key_less);
  uint64_t payload_sum_after = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) {
      ASSERT_LE(v[i - 1].key, v[i].key);
    }
    payload_sum_after += v[i].payload;
  }
  EXPECT_EQ(payload_sum, payload_sum_after);
}

TEST(SampleSort, AllEqual) {
  std::vector<uint64_t> v(200000, 5);
  sample_sort(std::span<uint64_t>(v));
  for (uint64_t x : v) ASSERT_EQ(x, 5u);
}

TEST(SampleSort, TwoDistinctValues) {
  std::vector<uint64_t> v(200000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = i % 2;
  sample_sort(std::span<uint64_t>(v));
  for (size_t i = 1; i < v.size(); ++i) ASSERT_LE(v[i - 1], v[i]);
}

}  // namespace
}  // namespace parsemi
