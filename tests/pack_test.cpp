// Tests for the parallel pack / filter / pack_index building blocks.
#include "primitives/pack.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace parsemi {
namespace {

class PackSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(PackSizes, PackKeepsFlaggedElementsInOrder) {
  size_t n = GetParam();
  std::vector<uint64_t> v(n);
  rng r(n + 3);
  for (size_t i = 0; i < n; ++i) v[i] = r.next() % 100;
  auto keep = [&](size_t i) { return v[i] % 2 == 0; };

  std::vector<uint64_t> expected;
  for (size_t i = 0; i < n; ++i)
    if (keep(i)) expected.push_back(v[i]);

  auto got = pack(std::span<const uint64_t>(v), keep);
  EXPECT_EQ(got, expected);
}

TEST_P(PackSizes, PackIndexMatchesSequential) {
  size_t n = GetParam();
  auto pred = [](size_t i) { return (i % 7 == 0) || (i % 11 == 3); };
  std::vector<size_t> expected;
  for (size_t i = 0; i < n; ++i)
    if (pred(i)) expected.push_back(i);
  EXPECT_EQ(pack_index(n, pred), expected);
}

INSTANTIATE_TEST_SUITE_P(AcrossSizes, PackSizes,
                         ::testing::Values(0, 1, 2, 10, 1000, 2048, 65537,
                                           500000));

TEST(Pack, NoneKept) {
  std::vector<int> v(5000, 1);
  auto got = pack(std::span<const int>(v), [](size_t) { return false; });
  EXPECT_TRUE(got.empty());
}

TEST(Pack, AllKept) {
  std::vector<int> v(5000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int>(i);
  auto got = pack(std::span<const int>(v), [](size_t) { return true; });
  EXPECT_EQ(got, v);
}

TEST(Pack, SingleSurvivorAtEveryPosition) {
  constexpr size_t kN = 3000;
  for (size_t keep : {size_t{0}, kN / 2, kN - 1}) {
    std::vector<size_t> v(kN);
    for (size_t i = 0; i < kN; ++i) v[i] = i;
    auto got = pack(std::span<const size_t>(v),
                    [&](size_t i) { return i == keep; });
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], keep);
  }
}

TEST(Filter, ByValuePredicate) {
  std::vector<int> v = {5, -3, 0, 8, -1, 2};
  auto got = filter(std::span<const int>(v), [](int x) { return x > 0; });
  EXPECT_EQ(got, (std::vector<int>{5, 8, 2}));
}

TEST(PackIndex, BoundaryDetectionPattern) {
  // The usage pattern of Phase 2: boundaries of runs in a sorted array.
  std::vector<uint64_t> sorted = {1, 1, 1, 4, 4, 9, 9, 9, 9, 12};
  auto starts = pack_index(sorted.size(), [&](size_t i) {
    return i == 0 || sorted[i] != sorted[i - 1];
  });
  EXPECT_EQ(starts, (std::vector<size_t>{0, 3, 5, 9}));
}

}  // namespace
}  // namespace parsemi
