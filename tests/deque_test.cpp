// Direct tests of the Chase–Lev work-stealing deque: owner-side LIFO
// semantics, thief-side FIFO semantics, the single-element race, and a
// multi-thief stress test that accounts for every pushed job exactly once.
#include "scheduler/work_stealing_deque.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "scheduler/sched_fuzz.h"

namespace parsemi::internal {
namespace {

struct fake_job {
  int id;
};

TEST(Deque, PopOnEmptyReturnsNull) {
  work_stealing_deque<fake_job> d;
  EXPECT_EQ(d.pop(), nullptr);
  EXPECT_EQ(d.steal(), nullptr);
}

TEST(Deque, OwnerLifoOrder) {
  work_stealing_deque<fake_job> d;
  fake_job jobs[3] = {{1}, {2}, {3}};
  for (auto& j : jobs) d.push(&j);
  EXPECT_EQ(d.pop()->id, 3);
  EXPECT_EQ(d.pop()->id, 2);
  EXPECT_EQ(d.pop()->id, 1);
  EXPECT_EQ(d.pop(), nullptr);
}

TEST(Deque, ThiefFifoOrder) {
  work_stealing_deque<fake_job> d;
  fake_job jobs[3] = {{1}, {2}, {3}};
  for (auto& j : jobs) d.push(&j);
  EXPECT_EQ(d.steal()->id, 1);
  EXPECT_EQ(d.steal()->id, 2);
  EXPECT_EQ(d.steal()->id, 3);
  EXPECT_EQ(d.steal(), nullptr);
}

TEST(Deque, MixedPopAndSteal) {
  work_stealing_deque<fake_job> d;
  fake_job jobs[4] = {{1}, {2}, {3}, {4}};
  for (auto& j : jobs) d.push(&j);
  EXPECT_EQ(d.pop()->id, 4);    // owner takes newest
  EXPECT_EQ(d.steal()->id, 1);  // thief takes oldest
  EXPECT_EQ(d.pop()->id, 3);
  EXPECT_EQ(d.steal()->id, 2);
  EXPECT_EQ(d.pop(), nullptr);
}

TEST(Deque, SizeApproxTracksContents) {
  work_stealing_deque<fake_job> d;
  fake_job j{1};
  EXPECT_EQ(d.size_approx(), 0);
  d.push(&j);
  d.push(&j);
  EXPECT_EQ(d.size_approx(), 2);
  (void)d.pop();
  EXPECT_EQ(d.size_approx(), 1);
}

TEST(Deque, InterleavedPushPopReusesCapacity) {
  // Far more total pushes than kDequeCapacity must be fine as long as the
  // live size stays small (the circular buffer wraps).
  work_stealing_deque<fake_job> d;
  fake_job j{1};
  for (size_t round = 0; round < 4 * kDequeCapacity; ++round) {
    d.push(&j);
    ASSERT_NE(d.pop(), nullptr);
  }
  EXPECT_EQ(d.pop(), nullptr);
}

TEST(DequeStress, OwnerAndThievesAccountForEveryJob) {
  // One owner pushes N jobs while popping intermittently; 3 thieves steal
  // continuously. Every job must be taken exactly once (ids are unique and
  // each taker records what it got).
  constexpr int kJobs = 200000;
  constexpr int kThieves = 3;
  work_stealing_deque<fake_job> d;
  std::vector<fake_job> jobs(kJobs);
  for (int i = 0; i < kJobs; ++i) jobs[i].id = i;

  std::vector<std::atomic<uint8_t>> taken(kJobs);
  for (auto& t : taken) t.store(0, std::memory_order_relaxed);
  std::atomic<bool> done{false};
  std::atomic<int> total_taken{0};

  auto take = [&](fake_job* j) {
    ASSERT_NE(j, nullptr);
    // Relaxed RMW: exactly-once is proven by the returned prev value alone;
    // the joins below order the final reads.
    uint8_t prev = taken[j->id].fetch_add(1, std::memory_order_relaxed);
    ASSERT_EQ(prev, 0) << "job " << j->id << " taken twice";
    total_taken.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        fake_job* j = d.steal();
        if (j != nullptr) take(j);
      }
      // Drain anything left after the owner finished.
      for (fake_job* j = d.steal(); j != nullptr; j = d.steal()) take(j);
    });
  }

  // Owner: push all jobs, popping one after every third push to mix
  // owner-side traffic into the race, and draining when the deque gets
  // near capacity (thieves may be slow; overflow aborts by design).
  for (int i = 0; i < kJobs; ++i) {
    d.push(&jobs[i]);
    if (i % 3 == 2) {
      fake_job* j = d.pop();
      if (j != nullptr) take(j);
    }
    while (d.size_approx() > static_cast<int64_t>(kDequeCapacity / 2)) {
      fake_job* j = d.pop();
      if (j != nullptr) take(j);
    }
  }
  for (fake_job* j = d.pop(); j != nullptr; j = d.pop()) take(j);
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(total_taken.load(std::memory_order_relaxed), kJobs);
  for (int i = 0; i < kJobs; ++i)
    ASSERT_EQ(taken[i].load(std::memory_order_relaxed), 1) << "job " << i;
}

TEST(DequeStress, PerturbedInterleavingsAccountForEveryJob) {
  // Same exactly-once accounting as above, but with the schedule-fuzzing
  // lane hooks live inside pop()/steal(): each participant registers a lane
  // so seed-derived yields/spins skew the pop-vs-steal race toward the
  // single-element corner cases. Repeated over several seeds.
  if constexpr (!sched_fuzz::kCompiledIn) {
    GTEST_SKIP() << "built with PARSEMI_SCHED_FUZZ=OFF";
  }
  constexpr int kJobs = 60000;
  constexpr int kThieves = 3;
  for (uint64_t seed : {11ull, 22ull, 33ull}) {
    sched_fuzz::scoped_enable fuzz(seed);
    work_stealing_deque<fake_job> d;
    std::vector<fake_job> jobs(kJobs);
    for (int i = 0; i < kJobs; ++i) jobs[i].id = i;

    std::vector<std::atomic<uint8_t>> taken(kJobs);
    for (auto& t : taken) t.store(0, std::memory_order_relaxed);
    std::atomic<bool> done{false};
    std::atomic<int> total_taken{0};

    auto take = [&](fake_job* j) {
      ASSERT_NE(j, nullptr);
      // Relaxed RMW: exactly-once is proven by the returned prev value
      // alone; the joins below order the final reads.
      uint8_t prev = taken[j->id].fetch_add(1, std::memory_order_relaxed);
      ASSERT_EQ(prev, 0) << "seed " << seed << ": job " << j->id
                         << " taken twice";
      total_taken.fetch_add(1, std::memory_order_relaxed);
    };

    std::vector<std::thread> thieves;
    for (int t = 0; t < kThieves; ++t) {
      thieves.emplace_back([&, t] {
        sched_fuzz::lane_guard lane(100 + t);
        while (!done.load(std::memory_order_acquire)) {
          fake_job* j = d.steal();
          if (j != nullptr) take(j);
        }
        for (fake_job* j = d.steal(); j != nullptr; j = d.steal()) take(j);
      });
    }

    {
      sched_fuzz::lane_guard lane(99);
      // Push one job at a time and immediately race the pop against the
      // thieves: the perturbed single-element case is where Chase–Lev
      // orderings earn their keep.
      for (int i = 0; i < kJobs; ++i) {
        d.push(&jobs[i]);
        if (i % 2 == 1) {
          fake_job* j = d.pop();
          if (j != nullptr) take(j);
        }
        while (d.size_approx() > static_cast<int64_t>(kDequeCapacity / 2)) {
          fake_job* j = d.pop();
          if (j != nullptr) take(j);
        }
      }
      for (fake_job* j = d.pop(); j != nullptr; j = d.pop()) take(j);
    }
    done.store(true, std::memory_order_release);
    for (auto& t : thieves) t.join();

    EXPECT_EQ(total_taken.load(std::memory_order_relaxed), kJobs) << "seed " << seed;
    for (int i = 0; i < kJobs; ++i)
      ASSERT_EQ(taken[i].load(std::memory_order_relaxed), 1) << "seed " << seed << ": job " << i;
  }
}

}  // namespace
}  // namespace parsemi::internal
