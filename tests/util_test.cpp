// Tests for the utility layer: timers, argument parsing, table formatting,
// environment parsing edge cases, and the default-init buffer.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "util/default_init_buffer.h"
#include "util/env.h"
#include "util/table.h"
#include "util/timer.h"

namespace parsemi {
namespace {

TEST(Timer, ElapsedIncreases) {
  timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  double e = t.elapsed();
  EXPECT_GE(e, 0.009);
  EXPECT_LT(e, 5.0);
}

TEST(Timer, LapResets) {
  timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  double first = t.lap();
  double second = t.elapsed();
  EXPECT_GE(first, 0.004);
  EXPECT_LT(second, first);
}

TEST(PhaseTimer, RecordsNamedPhasesInOrder) {
  phase_timer pt;
  pt.start();
  pt.record("a");
  pt.record("b");
  ASSERT_EQ(pt.phases().size(), 2u);
  EXPECT_EQ(pt.phases()[0].first, "a");
  EXPECT_EQ(pt.phases()[1].first, "b");
  EXPECT_GE(pt.total(), 0.0);
}

TEST(PhaseTimer, RepeatedNamesAccumulate) {
  phase_timer pt;
  pt.start();
  pt.record("x");
  pt.record("x");
  ASSERT_EQ(pt.phases().size(), 1u);
}

TEST(PhaseTimer, ClearEmpties) {
  phase_timer pt;
  pt.start();
  pt.record("x");
  pt.clear();
  EXPECT_TRUE(pt.phases().empty());
}

TEST(ArgParser, FlagsWithValues) {
  const char* argv[] = {"prog", "--n", "1000", "--dist=zipf", "--threads", "4"};
  arg_parser args(6, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("n", 0), 1000);
  EXPECT_EQ(args.get_string("dist", ""), "zipf");
  EXPECT_EQ(args.get_int("threads", 0), 4);
  EXPECT_EQ(args.get_int("missing", 77), 77);
}

TEST(ArgParser, BooleanSwitches) {
  const char* argv[] = {"prog", "--csv", "--n", "5"};
  arg_parser args(4, const_cast<char**>(argv));
  EXPECT_TRUE(args.has("csv"));
  EXPECT_FALSE(args.has("json"));
  EXPECT_EQ(args.get_int("n", 0), 5);
}

TEST(ArgParser, DoubleValues) {
  const char* argv[] = {"prog", "--alpha=1.5"};
  arg_parser args(2, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(args.get_double("beta", 2.5), 2.5);
}

TEST(ArgParser, PositionalArguments) {
  const char* argv[] = {"prog", "input.txt", "--n", "5", "output.txt"};
  arg_parser args(5, const_cast<char**>(argv));
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "output.txt");
}

TEST(AsciiTable, AlignsColumns) {
  ascii_table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| longer"), std::string::npos);
  // Each line has the same length (alignment).
  size_t first_nl = s.find('\n');
  std::string first_line = s.substr(0, first_nl);
  size_t pos = 0;
  while (pos < s.size()) {
    size_t nl = s.find('\n', pos);
    if (nl == std::string::npos) break;
    EXPECT_EQ(nl - pos, first_line.size());
    pos = nl + 1;
  }
}

TEST(AsciiTable, ShortRowsArePadded) {
  ascii_table t({"a", "b", "c"});
  t.add_row({"1"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("| 1"), std::string::npos);
}

TEST(AsciiTable, CsvOutput) {
  ascii_table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(0.456789, 3), "0.457");
  EXPECT_EQ(fmt(2.0, 2), "2.00");
}

TEST(FmtCount, HumanReadable) {
  EXPECT_EQ(fmt_count(10000000), "10M");
  EXPECT_EQ(fmt_count(1000000000), "1B");
  EXPECT_EQ(fmt_count(32000), "32K");
  EXPECT_EQ(fmt_count(1234), "1234");
  EXPECT_EQ(fmt_count(0), "0");
}

TEST(EnvInt, ParsesAndRejects) {
  setenv("PARSEMI_TEST_ENV", "123", 1);
  EXPECT_EQ(env_int("PARSEMI_TEST_ENV"), std::optional<int64_t>(123));
  setenv("PARSEMI_TEST_ENV", "abc", 1);
  EXPECT_EQ(env_int("PARSEMI_TEST_ENV"), std::nullopt);
  unsetenv("PARSEMI_TEST_ENV");
  EXPECT_EQ(env_int("PARSEMI_TEST_ENV"), std::nullopt);
}

TEST(EnvInt, EdgeCases) {
  // Negative values parse (PARSEMI_* knobs treat <= 0 as "off").
  setenv("PARSEMI_TEST_ENV", "-5", 1);
  EXPECT_EQ(env_int("PARSEMI_TEST_ENV"), std::optional<int64_t>(-5));
  // strtoll semantics, documented by test: a leading integer parses even
  // with trailing garbage, and leading whitespace is skipped.
  setenv("PARSEMI_TEST_ENV", "12abc", 1);
  EXPECT_EQ(env_int("PARSEMI_TEST_ENV"), std::optional<int64_t>(12));
  setenv("PARSEMI_TEST_ENV", "  42", 1);
  EXPECT_EQ(env_int("PARSEMI_TEST_ENV"), std::optional<int64_t>(42));
  // Empty string is "unset", not zero.
  setenv("PARSEMI_TEST_ENV", "", 1);
  EXPECT_EQ(env_int("PARSEMI_TEST_ENV"), std::nullopt);
  unsetenv("PARSEMI_TEST_ENV");
}

TEST(ParseByteSize, PlainBytesAndSuffixes) {
  EXPECT_EQ(parse_byte_size("0"), std::optional<uint64_t>(0));
  EXPECT_EQ(parse_byte_size("16384"), std::optional<uint64_t>(16384));
  EXPECT_EQ(parse_byte_size("64k"), std::optional<uint64_t>(64ull << 10));
  EXPECT_EQ(parse_byte_size("64K"), std::optional<uint64_t>(64ull << 10));
  EXPECT_EQ(parse_byte_size("512M"), std::optional<uint64_t>(512ull << 20));
  EXPECT_EQ(parse_byte_size("2G"), std::optional<uint64_t>(2ull << 30));
  EXPECT_EQ(parse_byte_size("2g"), std::optional<uint64_t>(2ull << 30));
  EXPECT_EQ(parse_byte_size("1T"), std::optional<uint64_t>(1ull << 40));
  // Optional trailing B after a suffix: "64KB" == "64K".
  EXPECT_EQ(parse_byte_size("64KB"), std::optional<uint64_t>(64ull << 10));
  EXPECT_EQ(parse_byte_size("2gb"), std::optional<uint64_t>(2ull << 30));
}

TEST(ParseByteSize, RejectsGarbage) {
  EXPECT_EQ(parse_byte_size(nullptr), std::nullopt);
  EXPECT_EQ(parse_byte_size(""), std::nullopt);
  EXPECT_EQ(parse_byte_size("-5"), std::nullopt);   // no signs
  EXPECT_EQ(parse_byte_size("+5"), std::nullopt);
  EXPECT_EQ(parse_byte_size(" 5"), std::nullopt);   // no whitespace
  EXPECT_EQ(parse_byte_size("5 "), std::nullopt);
  EXPECT_EQ(parse_byte_size("M"), std::nullopt);    // suffix needs digits
  EXPECT_EQ(parse_byte_size("abc"), std::nullopt);
  EXPECT_EQ(parse_byte_size("12X"), std::nullopt);  // unknown suffix
  EXPECT_EQ(parse_byte_size("12MB3"), std::nullopt);
  EXPECT_EQ(parse_byte_size("1.5G"), std::nullopt);  // no fractions
  EXPECT_EQ(parse_byte_size("5B"), std::nullopt);  // bare B only after K/M/G/T
}

TEST(ParseByteSize, OverflowYieldsNullopt) {
  // Fits in uint64 exactly at the boundary.
  EXPECT_EQ(parse_byte_size("18446744073709551615"),
            std::optional<uint64_t>(UINT64_MAX));
  EXPECT_EQ(parse_byte_size("18446744073709551616"), std::nullopt);
  // The digits fit but the shift overflows.
  EXPECT_EQ(parse_byte_size("999999999999T"), std::nullopt);
  EXPECT_EQ(parse_byte_size("16777216T"), std::nullopt);  // 2^24 * 2^40 = 2^64
  EXPECT_EQ(parse_byte_size("16777215T"),
            std::optional<uint64_t>(16777215ull << 40));
}

TEST(EnvByteSize, ReadsEnvironment) {
  setenv("PARSEMI_TEST_ENV", "512M", 1);
  EXPECT_EQ(env_byte_size("PARSEMI_TEST_ENV"),
            std::optional<uint64_t>(512ull << 20));
  setenv("PARSEMI_TEST_ENV", "nope", 1);
  EXPECT_EQ(env_byte_size("PARSEMI_TEST_ENV"), std::nullopt);
  setenv("PARSEMI_TEST_ENV", "", 1);
  EXPECT_EQ(env_byte_size("PARSEMI_TEST_ENV"), std::nullopt);
  unsetenv("PARSEMI_TEST_ENV");
  EXPECT_EQ(env_byte_size("PARSEMI_TEST_ENV"), std::nullopt);
}

TEST(ArgParser, ByteSizeValues) {
  const char* argv[] = {"prog", "--memory-budget", "2G", "--cap=64KB"};
  arg_parser args(4, const_cast<char**>(argv));
  EXPECT_EQ(args.get_bytes("memory-budget", 0), 2ull << 30);
  EXPECT_EQ(args.get_bytes("cap", 0), 64ull << 10);
  EXPECT_EQ(args.get_bytes("missing", 123), 123u);
}

TEST(ArgParserDeath, GarbageByteSizeExitsWithCode2) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* argv[] = {"prog", "--memory-budget", "2.5G"};
  arg_parser args(3, const_cast<char**>(argv));
  EXPECT_EXIT(args.get_bytes("memory-budget", 0),
              ::testing::ExitedWithCode(2),
              "invalid value for --memory-budget");
}

TEST(ArgParser, FlagFollowedByFlagIsBooleanSwitch) {
  const char* argv[] = {"prog", "--csv", "--n", "5"};
  arg_parser args(4, const_cast<char**>(argv));
  EXPECT_TRUE(args.has("csv"));
  EXPECT_EQ(args.get_string("csv", "sentinel"), "");
  EXPECT_EQ(args.get_int("n", 0), 5);
}

TEST(ArgParser, NegativeValuesAreValuesNotFlags) {
  const char* argv[] = {"prog", "--n", "-5", "--alpha", "-1.5"};
  arg_parser args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("n", 0), -5);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), -1.5);
}

TEST(ArgParser, EmptyEqualsValueFallsBack) {
  const char* argv[] = {"prog", "--name="};
  arg_parser args(2, const_cast<char**>(argv));
  EXPECT_TRUE(args.has("name"));
  EXPECT_EQ(args.get_string("name", "fb"), "");
  // Numeric getters treat the empty value as absent rather than erroring.
  EXPECT_EQ(args.get_int("name", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("name", 2.5), 2.5);
}

TEST(ArgParserDeath, GarbageNumericValueExitsWithCode2) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* argv[] = {"prog", "--n", "12x"};
  arg_parser args(3, const_cast<char**>(argv));
  EXPECT_EXIT(args.get_int("n", 0), ::testing::ExitedWithCode(2),
              "invalid value for --n");
  const char* argv2[] = {"prog", "--alpha", "fast"};
  arg_parser args2(3, const_cast<char**>(argv2));
  EXPECT_EXIT(args2.get_double("alpha", 0.0), ::testing::ExitedWithCode(2),
              "invalid value for --alpha");
}

TEST(DefaultInitBuffer, StoresAndReadsBack) {
  internal::default_init_buffer<uint64_t> buf(1000);
  EXPECT_EQ(buf.size(), 1000u);
  ASSERT_NE(buf.data(), nullptr);
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = i * 3;
  for (size_t i = 0; i < buf.size(); ++i) {
    ASSERT_EQ(buf[i], i * 3) << i;
  }
  // const access path
  const auto& cbuf = buf;
  EXPECT_EQ(cbuf[999], 999u * 3);
  EXPECT_EQ(cbuf.data(), buf.data());
}

TEST(DefaultInitBuffer, ZeroSizeIsSafe) {
  internal::default_init_buffer<int> buf(0);
  EXPECT_EQ(buf.size(), 0u);
}

}  // namespace
}  // namespace parsemi
