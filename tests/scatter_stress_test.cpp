// Interleaving stress for the scatter engine (Phase 3): random
// configurations of size, skew, bucket sizing, placement path (CAS /
// buffered / blocked), probing mode, worker count and schedule-fuzz seed,
// in both slot-claiming modes (key-CAS for `record`, flag-array for a
// record type without a leading key word). Undersized plans must report
// overflow cleanly on every path and succeed once capacity is restored.
#include "core/scatter.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <sstream>
#include <vector>

#include "core/bucket_plan.h"
#include "core/sampler.h"
#include "hashing/hash64.h"
#include "proptest.h"
#include "sort/radix_sort.h"
#include "test_helpers.h"
#include "util/rng.h"
#include "workloads/distributions.h"

namespace parsemi {
namespace {

struct odd_record {
  uint32_t tag;
  uint64_t key_value;
  friend bool operator==(const odd_record&, const odd_record&) = default;
};
struct odd_key {
  uint64_t operator()(const odd_record& r) const { return r.key_value; }
};

struct scatter_config {
  size_t n = 0;
  uint64_t vocab = 1;
  double alpha = 1.3;
  int path = 0;  // scatter_path: 0 = cas, 1 = buffered, 2 = blocked
  bool random_probing = false;
  bool flag_mode = false;  // scatter odd_record instead of record
  uint64_t data_seed = 0;
  uint64_t sched_seed = 0;
  int workers = 0;
};

scatter_path path_of(const scatter_config& c) {
  return static_cast<scatter_path>(c.path);
}

std::string describe(const scatter_config& c) {
  std::ostringstream os;
  os << "n=" << c.n << " vocab=" << c.vocab << " alpha=" << c.alpha
     << " path=" << to_string(path_of(c))
     << " probe=" << (c.random_probing ? "random" : "linear")
     << " mode=" << (c.flag_mode ? "flag" : "key-cas")
     << " data_seed=" << c.data_seed << " sched_seed=" << c.sched_seed
     << " workers=" << c.workers;
  return os.str();
}

scatter_config generate(rng& r) {
  scatter_config c;
  c.n = 1000 + proptest::log_uniform_u64(r, 1, 50000);
  c.vocab = 1 + proptest::log_uniform_u64(r, 1, 1 << 20);
  // Includes deliberately undersized plans (alpha < 1) to exercise the
  // overflow → retry path under a perturbed schedule.
  c.alpha = proptest::chance(r, 0.25) ? proptest::uniform_real(r, 0.01, 0.5)
                                      : proptest::uniform_real(r, 1.1, 1.6);
  c.path = proptest::pick(r, {0, 1, 2});
  c.random_probing = proptest::chance(r, 0.3);
  c.flag_mode = proptest::chance(r, 0.4);
  c.data_seed = r.next();
  c.sched_seed = sched_fuzz::kCompiledIn ? (r.next() | 1) : 0;
  c.workers = proptest::pick(r, {0, 2, 3, 4});
  return c;
}

std::vector<scatter_config> shrink(const scatter_config& c) {
  std::vector<scatter_config> out;
  if (c.sched_seed != 0) {
    scatter_config d = c;
    d.sched_seed = 0;
    out.push_back(d);
  }
  if (c.path != 0) {
    scatter_config d = c;
    d.path = 0;  // toward the long-standing CAS baseline
    out.push_back(d);
  }
  if (c.workers != 1) {
    scatter_config d = c;
    d.workers = 1;
    out.push_back(d);
  }
  for (uint64_t nn : proptest::shrink_toward(c.n, 1000)) {
    scatter_config d = c;
    d.n = nn;
    out.push_back(d);
  }
  for (uint64_t vv : proptest::shrink_toward(c.vocab, 1)) {
    scatter_config d = c;
    d.vocab = vv;
    out.push_back(d);
  }
  if (c.random_probing) {
    scatter_config d = c;
    d.random_probing = false;
    out.push_back(d);
  }
  if (c.flag_mode) {
    scatter_config d = c;
    d.flag_mode = false;
    out.push_back(d);
  }
  if (c.alpha < 1.0) {
    scatter_config d = c;
    d.alpha = 1.3;
    out.push_back(d);
  }
  return out;
}

// Runs one scatter at the given alpha; on ok verifies occupancy count,
// permutation, and bucket-boundary placement. Returns the raw result plus
// any property violation.
template <typename Record, typename GetKey, typename Less>
std::pair<scatter_result, std::optional<std::string>> scatter_once(
    const std::vector<Record>& in, GetKey get_key, Less less,
    const semisort_params& params, double alpha, scatter_path path) {
  rng base(99);
  pipeline_context ctx;  // owns the plan's (and engine's) arena storage
  auto sample = sample_keys(std::span<const Record>(in), get_key,
                            params.sampling_p, base);
  radix_sort_u64(std::span<uint64_t>(sample));
  auto plan = build_bucket_plan(std::span<const uint64_t>(sample), in.size(),
                                params, alpha, ctx);
  scatter_storage<Record> storage(plan.total_slots, rng(5).next() | 1);
  auto result = scatter_dispatch(path, std::span<const Record>(in), storage,
                                 plan, get_key, params, rng(7), ctx);
  if (result != scatter_result::ok) return {result, std::nullopt};

  std::vector<Record> found;
  size_t occupied = 0;
  for (size_t i = 0; i < plan.total_slots; ++i) {
    if (storage.occupied(i)) {
      ++occupied;
      found.push_back(storage.slots[i]);
    }
  }
  if (occupied != in.size()) {
    return {result, "occupied slot count != n (lost or duplicated records)"};
  }
  if (!testing::is_permutation_of(std::span<const Record>(found),
                                  std::span<const Record>(in), less)) {
    return {result, "scattered records are not a permutation of the input"};
  }
  for (size_t i = 0, b = 0; i < plan.total_slots; ++i) {
    while (plan.bucket_offset[b + 1] <= i) ++b;
    if (storage.occupied(i) &&
        plan.bucket_of(get_key(storage.slots[i])) != b) {
      return {result, "record placed outside its bucket's slot range"};
    }
  }
  return {result, std::nullopt};
}

template <typename Record, typename GetKey, typename Less>
std::optional<std::string> run_mode(const scatter_config& c,
                                    const std::vector<Record>& in,
                                    GetKey get_key, Less less) {
  semisort_params params;
  params.probing = c.random_probing
                       ? semisort_params::probe_strategy::random
                       : semisort_params::probe_strategy::linear;
  auto [result, violation] =
      scatter_once(in, get_key, less, params, c.alpha, path_of(c));
  if (violation) return violation;
  if (result == scatter_result::sentinel_clash) {
    // Possible only if a generated key collides with the fixed sentinel;
    // astronomically unlikely with hashed keys, so treat it as a failure.
    return "unexpected sentinel clash";
  }
  if (result == scatter_result::overflow) {
    // The Las-Vegas escape hatch: retry with honest capacity must succeed.
    auto [retry, retry_violation] =
        scatter_once(in, get_key, less, params, 1.3, path_of(c));
    if (retry_violation) return retry_violation;
    if (retry != scatter_result::ok) {
      return "retry with alpha=1.3 after overflow did not succeed";
    }
  }
  return std::nullopt;
}

std::optional<std::string> scatter_holds(const scatter_config& c) {
  proptest::scoped_workers w(c.workers);
  sched_fuzz::scoped_enable fuzz(c.sched_seed);
  if (c.flag_mode) {
    std::vector<odd_record> in(c.n);
    rng r(c.data_seed);
    for (size_t i = 0; i < in.size(); ++i) {
      in[i] = {static_cast<uint32_t>(i), hash64(r.next_below(c.vocab))};
    }
    return run_mode(c, in, odd_key{}, [](const odd_record& a,
                                         const odd_record& b) {
      return a.key_value != b.key_value ? a.key_value < b.key_value
                                        : a.tag < b.tag;
    });
  }
  auto in = generate_records(c.n, {distribution_kind::uniform, c.vocab},
                             c.data_seed);
  return run_mode(c, in, record_key{},
                  [](const record& a, const record& b) {
                    return a.key != b.key ? a.key < b.key
                                          : a.payload < b.payload;
                  });
}

TEST(ScatterStress, RandomConfigsUnderPerturbedSchedules) {
  proptest::options opt;
  opt.trials = 25;
  opt.seed = 31415926;
  proptest::check<scatter_config>(generate, scatter_holds, shrink, describe,
                                  opt);
}

}  // namespace
}  // namespace parsemi
