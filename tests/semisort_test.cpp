// End-to-end tests for the public semisort API on the paper's record type.
#include "core/semisort.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "test_helpers.h"
#include "workloads/distributions.h"

namespace parsemi {
namespace {

void check(const std::vector<record>& in, semisort_params params = {}) {
  std::vector<record> out(in.size());
  semisort_hashed(std::span<const record>(in), std::span<record>(out),
                  record_key{}, params);
  EXPECT_TRUE(testing::valid_semisort(out, in));
}

TEST(Semisort, EmptyInput) {
  std::vector<record> in;
  check(in);
}

TEST(Semisort, SingleRecord) { check({{42, 7}}); }

TEST(Semisort, TwoRecordsSameKey) { check({{42, 1}, {42, 2}}); }

TEST(Semisort, TwoRecordsDifferentKeys) { check({{42, 1}, {43, 2}}); }

TEST(Semisort, OutputSizeMismatchThrows) {
  std::vector<record> in(10), out(9);
  EXPECT_THROW(semisort_hashed(std::span<const record>(in),
                               std::span<record>(out)),
               std::invalid_argument);
}

TEST(Semisort, BelowSequentialCutoff) {
  auto in = generate_records(100, {distribution_kind::uniform, 20}, 1);
  check(in);
}

TEST(Semisort, JustAboveSequentialCutoff) {
  auto in = generate_records(300, {distribution_kind::uniform, 20}, 2);
  check(in);
}

TEST(Semisort, ForcedParallelPathOnTinyInput) {
  semisort_params params;
  params.sequential_cutoff = 0;
  auto in = generate_records(50, {distribution_kind::uniform, 5}, 3);
  check(in, params);
}

TEST(Semisort, AllKeysEqual) {
  std::vector<record> in(200000);
  for (size_t i = 0; i < in.size(); ++i) in[i] = {0xabcdefULL, i};
  check(in);
}

TEST(Semisort, AllKeysDistinct) {
  std::vector<record> in(200000);
  for (size_t i = 0; i < in.size(); ++i) in[i] = {hash64(i), i};
  check(in);
}

TEST(Semisort, ExtremeKeyValues) {
  // 0 and ~0 are special internally (hash table sentinel, bit tricks).
  std::vector<record> in;
  for (size_t i = 0; i < 100000; ++i)
    in.push_back({i % 3 == 0 ? 0ULL : (i % 3 == 1 ? ~0ULL : hash64(i)), i});
  check(in);
}

TEST(Semisort, UniformDistribution) {
  check(generate_records(200000, {distribution_kind::uniform, 200000}, 4));
}

TEST(Semisort, HeavyUniformDistribution) {
  check(generate_records(200000, {distribution_kind::uniform, 10}, 5));
}

TEST(Semisort, ExponentialDistribution) {
  check(generate_records(200000, {distribution_kind::exponential, 200}, 6));
}

TEST(Semisort, ZipfianDistribution) {
  check(generate_records(200000, {distribution_kind::zipfian, 100000}, 7));
}

TEST(Semisort, KeysNearHeavyLightThreshold) {
  // Every key with multiplicity ≈ δ/p = 256: the worst case the paper
  // identifies (most keys straddle the heavy/light boundary).
  constexpr size_t kN = 256 * 800;
  std::vector<record> in(kN);
  for (size_t i = 0; i < kN; ++i) in[i] = {hash64(i / 256), i};
  check(in);
}

TEST(Semisort, KeysStraddlingRangeBoundaries) {
  // Adjacent hash values land in adjacent light ranges; groups must not
  // bleed across bucket boundaries.
  std::vector<record> in;
  for (size_t range = 0; range < 64; ++range) {
    uint64_t base_key = (range << 48);
    for (uint64_t d : {0ULL, 1ULL, (1ULL << 48) - 1})
      for (int rep = 0; rep < 30; ++rep)
        in.push_back({base_key + d, in.size()});
  }
  // pad with random records to exceed the cutoff comfortably
  auto pad = generate_records(50000, {distribution_kind::uniform, 1u << 30}, 8);
  in.insert(in.end(), pad.begin(), pad.end());
  check(in);
}

TEST(Semisort, ReturnsVectorOverload) {
  auto in = generate_records(50000, {distribution_kind::exponential, 50}, 9);
  auto out = semisort_hashed(std::span<const record>(in));
  EXPECT_TRUE(testing::valid_semisort(out, in));
}

TEST(Semisort, CustomGetKey) {
  // Semisort by payload instead of key.
  std::vector<record> in(100000);
  rng r(10);
  for (size_t i = 0; i < in.size(); ++i)
    in[i] = {i, hash64(r.next_below(100))};
  std::vector<record> out(in.size());
  auto by_payload = [](const record& rec) { return rec.payload; };
  semisort_hashed(std::span<const record>(in), std::span<record>(out),
                  by_payload);
  EXPECT_TRUE(testing::is_semisorted(std::span<const record>(out), by_payload));
}

TEST(Semisort, DeterministicForFixedSeed) {
  auto in = generate_records(150000, {distribution_kind::zipfian, 10000}, 11);
  auto a = semisort_hashed(std::span<const record>(in));
  auto b = semisort_hashed(std::span<const record>(in));
  EXPECT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << i;
}

TEST(Semisort, StatsAreFilled) {
  semisort_stats stats;
  semisort_params params;
  params.stats = &stats;
  auto in = generate_records(200000, {distribution_kind::exponential, 200}, 12);
  std::vector<record> out(in.size());
  semisort_hashed(std::span<const record>(in), std::span<record>(out),
                  record_key{}, params);
  EXPECT_EQ(stats.n, in.size());
  EXPECT_EQ(stats.sample_size, static_cast<size_t>(static_cast<double>(in.size()) * params.sampling_p));
  EXPECT_GT(stats.num_heavy_keys, 0u);  // λ=200 ⇒ many heavy keys
  EXPECT_GT(stats.heavy_records, in.size() / 2);
  EXPECT_GT(stats.total_slots, in.size() / 2);
  EXPECT_EQ(stats.restarts, 0);
  EXPECT_GT(stats.heavy_fraction(), 0.5);
  EXPECT_LT(stats.slots_per_record(), 16.0);
}

TEST(Semisort, TimingsCoverFivePhases) {
  phase_timer timings;
  semisort_params params;
  params.timings = &timings;
  auto in = generate_records(200000, {distribution_kind::uniform, 200000}, 13);
  std::vector<record> out(in.size());
  semisort_hashed(std::span<const record>(in), std::span<record>(out),
                  record_key{}, params);
  ASSERT_EQ(timings.phases().size(), 5u);
  EXPECT_EQ(timings.phases()[0].first, "sample and sort");
  EXPECT_EQ(timings.phases()[1].first, "construct buckets");
  EXPECT_EQ(timings.phases()[2].first, "scatter");
  EXPECT_EQ(timings.phases()[3].first, "local sort");
  EXPECT_EQ(timings.phases()[4].first, "pack");
  EXPECT_GT(timings.total(), 0.0);
}

TEST(Semisort, GeneralApiGroupsStringKeys) {
  std::vector<std::string> words;
  const char* base[] = {"apple", "pear", "plum", "fig", "apple", "fig"};
  for (int rep = 0; rep < 50000; ++rep)
    words.push_back(base[rep % 6] + std::string(rep % 3, 'x'));
  auto out = semisort(std::span<const std::string>(words),
                      [](const std::string& s) -> const std::string& { return s; },
                      [](const std::string& s) { return hash_string(s); });
  ASSERT_EQ(out.size(), words.size());
  // Contract: equal strings contiguous.
  std::unordered_set<std::string> closed;
  size_t i = 0;
  while (i < out.size()) {
    ASSERT_FALSE(closed.contains(out[i])) << out[i];
    closed.insert(out[i]);
    std::string current = out[i];
    while (i < out.size() && out[i] == current) ++i;
  }
}

TEST(Semisort, WideRecordsKeyCasPath) {
  // 48-byte records with a leading key word: the key-CAS path must copy
  // the 40 payload bytes without touching the atomic key word.
  struct wide {
    uint64_t key;
    uint64_t a, b, c, d, e;
  };
  static_assert(scatter_storage<wide>::kKeyCas);
  std::vector<wide> in(60000);
  rng r(77);
  for (size_t i = 0; i < in.size(); ++i) {
    uint64_t k = hash64(r.next_below(500));
    in[i] = {k, i, i * 2, i * 3, i * 4, i * 5};
  }
  std::vector<wide> out(in.size());
  semisort_hashed(std::span<const wide>(in), std::span<wide>(out),
                  [](const wide& w) { return w.key; });
  EXPECT_TRUE(testing::is_semisorted(std::span<const wide>(out),
                                     [](const wide& w) { return w.key; }));
  // Payload integrity: every record intact (checksum over all fields).
  auto checksum = [](const std::vector<wide>& v) {
    uint64_t h = 0;
    for (const auto& w : v)
      h ^= hash64(w.key ^ w.a ^ (w.b << 1) ^ (w.c << 2) ^ (w.d << 3) ^
                  (w.e << 4));
    return h;
  };
  EXPECT_EQ(checksum(in), checksum(out));
}

TEST(Semisort, GeneralApiCaseInsensitiveEquality) {
  // Custom Eq + matching hash: "Apple" and "apple" must group together.
  auto lower = [](std::string s) {
    for (char& c : s) c = static_cast<char>(std::tolower(c));
    return s;
  };
  std::vector<std::string> words;
  const char* base[] = {"Apple", "apple", "APPLE", "Pear", "pear", "Fig"};
  for (int rep = 0; rep < 5000; ++rep) words.push_back(base[rep % 6]);
  auto out = semisort(
      std::span<const std::string>(words),
      [](const std::string& s) -> const std::string& { return s; },
      [&](const std::string& s) { return hash_string(lower(s)); },
      [&](const std::string& a, const std::string& b) {
        return lower(a) == lower(b);
      });
  ASSERT_EQ(out.size(), words.size());
  // Three equivalence classes, each contiguous.
  std::unordered_set<std::string> closed;
  size_t i = 0, classes = 0;
  while (i < out.size()) {
    std::string cls = lower(out[i]);
    ASSERT_FALSE(closed.contains(cls)) << cls;
    closed.insert(cls);
    ++classes;
    while (i < out.size() && lower(out[i]) == cls) ++i;
  }
  EXPECT_EQ(classes, 3u);
}

TEST(Semisort, GeneralApiIntKeysByValue) {
  std::vector<int> values;
  rng r(14);
  for (int i = 0; i < 100000; ++i)
    values.push_back(static_cast<int>(r.next_below(50)));
  auto out = semisort(std::span<const int>(values),
                      [](int v) { return v; },
                      [](int v) { return hash64(static_cast<uint64_t>(v)); });
  ASSERT_EQ(out.size(), values.size());
  EXPECT_TRUE(testing::is_semisorted(std::span<const int>(out),
                                     [](int v) { return static_cast<uint64_t>(v); }));
}

}  // namespace
}  // namespace parsemi
