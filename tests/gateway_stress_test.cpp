// Stress for the concurrent job gateway: many foreign submitter threads
// hammer ONE small shared pool through bounded gateways, under perturbed
// schedules, mixing whole-pipeline jobs with params.pool overrides. An
// admission race, a lost wakeup, a cross-job accounting leak, or a stale
// slot shows up here as a wrong result, a hang (ctest timeout), or a data
// race in the tsan × stress CI lane.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/collect_reduce.h"
#include "core/group_by.h"
#include "core/pipeline_context.h"
#include "core/semisort.h"
#include "hashing/hash64.h"
#include "proptest.h"
#include "scheduler/job_gateway.h"
#include "scheduler/sched_fuzz.h"
#include "scheduler/scheduler.h"
#include "test_helpers.h"
#include "workloads/distributions.h"

namespace parsemi {
namespace {

// One deliberately small pool shared by every trial: contention for three
// workers across up to six submitters is the interesting regime (the
// default pool would also be adopted by the gtest main thread — a
// standalone pool keeps every submitter foreign).
worker_pool& shared_pool() {
  static worker_pool pool(3);
  return pool;
}

struct gw_config {
  size_t n = 1000;
  uint64_t distinct = 100;
  int submitters = 2;
  size_t queue_capacity = 8;
  uint64_t fuzz_seed = 0;  // 0 = schedule untouched
  uint64_t data_seed = 1;
};

gw_config generate(rng& r) {
  gw_config c;
  c.n = proptest::log_uniform_u64(r, 64, 40000);
  c.distinct = proptest::log_uniform_u64(r, 1, c.n);
  c.submitters = static_cast<int>(proptest::pick(r, {2, 3, 4, 6}));
  c.queue_capacity = proptest::pick<size_t>(r, {2, 4, 8});
  c.fuzz_seed = proptest::chance(r, 0.4) ? r.next() | 1 : 0;
  c.data_seed = r.next();
  return c;
}

std::string describe(const gw_config& c) {
  std::ostringstream os;
  os << "n=" << c.n << " distinct=" << c.distinct << " submitters="
     << c.submitters << " cap=" << c.queue_capacity << " fuzz="
     << c.fuzz_seed << " data=" << c.data_seed;
  return os.str();
}

std::vector<gw_config> shrink(const gw_config& c) {
  std::vector<gw_config> out;
  for (uint64_t n : proptest::shrink_toward(c.n, 64)) {
    gw_config d = c;
    d.n = n;
    d.distinct = std::min<uint64_t>(d.distinct, n);
    out.push_back(d);
  }
  if (c.submitters > 2) {
    gw_config d = c;
    d.submitters = 2;
    out.push_back(d);
  }
  if (c.fuzz_seed != 0) {
    gw_config d = c;
    d.fuzz_seed = 0;
    out.push_back(d);
  }
  return out;
}

// What one submitter thread does: run one of three workloads against the
// shared pool and verify its own result. Returns "" on success. Submitter
// index picks the workload, so every trial with ≥3 submitters exercises
// all of them concurrently on the same pool.
std::string run_submitter(const gw_config& c, int s, job_gateway& gateway) {
  std::vector<record> rows(c.n);
  rng r(splitmix64(c.data_seed + static_cast<uint64_t>(s) * 1000003));
  for (size_t i = 0; i < c.n; ++i)
    rows[i] = {hash64(r.next_below(c.distinct)), r.next_below(1000)};
  auto counts = testing::key_counts(std::span<const record>(rows),
                                    record_key{});

  switch (s % 3) {
    case 0: {  // whole semisort pipeline as one gateway job
      std::vector<record> out(c.n);
      pipeline_context ctx;
      semisort_stats stats;
      job_handle handle = gateway.submit([&rows, &out, &ctx, &stats] {
        semisort_params params;
        params.context = &ctx;
        params.stats = &stats;
        semisort_hashed(std::span<const record>(rows),
                        std::span<record>(out), record_key{}, params);
      });
      if (!handle.valid()) return "blocking gateway rejected a submission";
      handle.wait();
      if (!testing::valid_semisort(out, rows)) return "semisort job wrong";
      if (stats.sequential_fallbacks != 0) return "job fell back sequential";
      return "";
    }
    case 1: {  // derived operator as a gateway job
      std::vector<uint64_t> keys(c.n);
      for (size_t i = 0; i < c.n; ++i) keys[i] = rows[i].key;
      std::vector<std::pair<uint64_t, size_t>> got;
      pipeline_context ctx;
      job_handle handle = gateway.submit([&keys, &got, &ctx] {
        semisort_params params;
        params.context = &ctx;
        got = count_by_key(std::span<const uint64_t>(keys),
                           [](uint64_t k) { return k; }, std::equal_to<>{},
                           params);
      });
      if (!handle.valid()) return "blocking gateway rejected a submission";
      handle.wait();
      if (got.size() != counts.size()) return "wrong distinct-key count";
      for (const auto& [k, cnt] : got) {
        auto it = counts.find(k);
        if (it == counts.end() || it->second != cnt) return "wrong count";
      }
      return "";
    }
    default: {  // params.pool override straight from the foreign thread
      semisort_stats stats;
      semisort_params params;
      params.stats = &stats;
      params.pool = &gateway.pool();
      auto g = group_by_hashed(std::span<const record>(rows), record_key{},
                               params);
      if (g.records.size() != rows.size()) return "group_by lost rows";
      if (g.num_groups() != counts.size()) return "wrong group count";
      for (size_t grp = 0; grp < g.num_groups(); ++grp) {
        auto span = g.group(grp);
        for (const record& rec : span)
          if (rec.key != span.front().key) return "mixed keys in a group";
        if (counts[span.front().key] != span.size())
          return "group size mismatch";
      }
      if (stats.sequential_fallbacks != 0) return "override fell back";
      return "";
    }
  }
}

std::optional<std::string> property(const gw_config& c) {
  sched_fuzz::scoped_enable fuzz(c.fuzz_seed);
  job_gateway::config cfg;
  cfg.queue_capacity = c.queue_capacity;
  cfg.on_full = job_gateway::overflow_policy::block;
  job_gateway gateway(shared_pool(), cfg);

  std::vector<std::string> errors(static_cast<size_t>(c.submitters));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(c.submitters));
  for (int s = 0; s < c.submitters; ++s) {
    std::string* slot = &errors[static_cast<size_t>(s)];
    threads.emplace_back([&c, s, &gateway, slot] {
      *slot = run_submitter(c, s, gateway);
    });
  }
  for (auto& t : threads) t.join();
  if (gateway.in_flight() != 0) return "jobs leaked past their handles";

  for (int s = 0; s < c.submitters; ++s) {
    if (!errors[static_cast<size_t>(s)].empty()) {
      std::ostringstream os;
      os << "submitter " << s << ": " << errors[static_cast<size_t>(s)];
      return os.str();
    }
  }
  if (shared_pool().sequential_fallbacks() != 0)
    return "shared pool counted a sequential fallback";
  return std::nullopt;
}

TEST(GatewayStress, ConcurrentSubmittersOnOneSharedPool) {
  proptest::options opt;
  opt.trials = 20;
  opt.seed = 0x6A7E3A7E55ULL;
  proptest::check<gw_config>(generate, property, shrink, describe, opt);
}

}  // namespace
}  // namespace parsemi
