// Tests for shard/shard_plan.h: the budget → shard-count sizing model,
// greedy bin grouping over synthetic histograms (balanced, skewed, empty
// bins), and the sampled planner over real record arrays.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "hashing/hash64.h"
#include "shard/shard_plan.h"
#include "workloads/distributions.h"
#include "workloads/record.h"

namespace parsemi {
namespace {

TEST(ScratchModel, EstimateScalesWithRecords) {
  scratch_model m;
  EXPECT_GT(m.estimate_bytes(0, 16), 0u);  // fixed overhead
  EXPECT_GT(m.estimate_bytes(1 << 20, 16), m.estimate_bytes(1 << 10, 16));
  EXPECT_GT(m.footprint_bytes(1 << 20, 16),
            m.estimate_bytes(1 << 20, 16));  // footprint includes the input
}

TEST(ScratchModel, RecordsForBudgetInvertsFootprint) {
  scratch_model m;
  size_t budget = 256 << 20;
  size_t r = m.records_for_budget(budget, 16);
  EXPECT_GT(r, 0u);
  EXPECT_LE(m.footprint_bytes(r, 16), budget);
  // One more record's footprint must not fit (up to rounding slack).
  EXPECT_GT(m.footprint_bytes(r + r / 100 + 2, 16), budget);
  // A budget below the fixed overhead fits nothing.
  EXPECT_EQ(m.records_for_budget(1024, 16), 0u);
}

TEST(ScratchModel, ObserveIsMonotoneAndRaisesTheEstimate) {
  scratch_model m;
  size_t analytic = m.estimate_bytes(1000, 16);
  // An observation far above the analytic bound must raise the estimate...
  m.observe(1000, 16, m.fixed_bytes + 1000 * 500);
  EXPECT_GT(m.estimate_bytes(1000, 16), analytic);
  double high = m.observed_bytes_per_record;
  // ...and a later, smaller observation must not lower it back.
  m.observe(1000, 16, m.fixed_bytes + 1000 * 10);
  EXPECT_EQ(m.observed_bytes_per_record, high);
}

TEST(ChoosePrefixBits, ClampsToSensibleRange) {
  EXPECT_EQ(internal::choose_prefix_bits(1), 6);     // floor: 64 bins
  EXPECT_EQ(internal::choose_prefix_bits(8), 6);     // 8*8 = 64 bins
  EXPECT_EQ(internal::choose_prefix_bits(16), 7);    // 128 bins
  EXPECT_EQ(internal::choose_prefix_bits(100000), 12);  // ceiling: 4096 bins
}

TEST(GroupBins, BalancedHistogramSplitsEvenly) {
  std::vector<size_t> bins(64, 100);  // 6400 records
  size_t num_shards = 0;
  std::vector<size_t> est;
  auto map = internal::group_bins(std::span<const size_t>(bins), 1000,
                                  &num_shards, &est);
  EXPECT_EQ(num_shards, 7u);  // 10 bins of 100 per shard → 6×1000 + 1×400
  ASSERT_EQ(est.size(), num_shards);
  size_t total = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    EXPECT_LE(est[s], 1000u) << s;
    total += est[s];
  }
  EXPECT_EQ(total, 6400u);
  // Monotone non-decreasing map covering every shard id exactly once.
  ASSERT_EQ(map.size(), bins.size());
  EXPECT_EQ(map.front(), 0u);
  EXPECT_EQ(map.back(), num_shards - 1);
  for (size_t b = 1; b < map.size(); ++b) {
    EXPECT_GE(map[b], map[b - 1]);
    EXPECT_LE(map[b] - map[b - 1], 1u);
  }
}

TEST(GroupBins, OversizedSingleBinGetsItsOwnShard) {
  // Bin 2 alone exceeds the cap: it must become its own shard rather than
  // merging with a neighbour (and rather than looping).
  std::vector<size_t> bins = {50, 50, 5000, 50, 50};
  size_t num_shards = 0;
  std::vector<size_t> est;
  auto map = internal::group_bins(std::span<const size_t>(bins), 200,
                                  &num_shards, &est);
  EXPECT_EQ(num_shards, 3u);
  EXPECT_EQ(map[0], map[1]);       // {50, 50}
  EXPECT_EQ(map[2], map[1] + 1);   // {5000} alone
  EXPECT_EQ(map[3], map[2] + 1);   // {50, 50}
  EXPECT_EQ(map[4], map[3]);
  EXPECT_EQ(est[1], 5000u);
}

TEST(GroupBins, HugeCapYieldsOneShard) {
  std::vector<size_t> bins(128, 10);
  size_t num_shards = 0;
  std::vector<size_t> est;
  auto map = internal::group_bins(std::span<const size_t>(bins), 1 << 20,
                                  &num_shards, &est);
  EXPECT_EQ(num_shards, 1u);
  for (uint32_t s : map) EXPECT_EQ(s, 0u);
  EXPECT_EQ(est[0], 1280u);
}

TEST(GroupBins, EmptyBinsFoldIntoNeighbours) {
  std::vector<size_t> bins = {0, 0, 300, 0, 0, 300, 0};
  size_t num_shards = 0;
  std::vector<size_t> est;
  internal::group_bins(std::span<const size_t>(bins), 400, &num_shards, &est);
  EXPECT_EQ(num_shards, 2u);
  EXPECT_EQ(est[0], 300u);
  EXPECT_EQ(est[1], 300u);
}

TEST(PlanShards, HugeBudgetPlansSingleShard) {
  auto recs = generate_records(20000, {distribution_kind::uniform, 1u << 20}, 1);
  scratch_model model;
  auto plan = plan_shards(std::span<const record>(recs), record_key{},
                          size_t{64} << 30, model);
  EXPECT_EQ(plan.num_shards, 1u);
}

TEST(PlanShards, TightBudgetPlansManyBoundedShards) {
  auto recs = generate_records(200000, {distribution_kind::uniform, 1u << 26}, 2);
  scratch_model model;
  // An eighth of the *variable* footprint on top of the fixed scratch
  // floor: a budget below the floor degrades to best-effort max sharding
  // (cap 1), where the `est <= cap` packing invariant cannot hold.
  size_t variable =
      model.footprint_bytes(recs.size(), sizeof(record)) - model.fixed_bytes;
  size_t budget = model.fixed_bytes + variable / 8;
  auto plan = plan_shards(std::span<const record>(recs), record_key{}, budget,
                          model);
  EXPECT_GT(plan.num_shards, 4u);
  EXPECT_GT(plan.prefix_bits, 0);
  EXPECT_GT(plan.shard_record_cap, 0u);
  // Hashed keys are uniform: every planned shard's estimate stays under the
  // capacity the budget allows.
  for (size_t est : plan.est_records) EXPECT_LE(est, plan.shard_record_cap);
  // shard_of_key agrees with the bin map and is monotone in the prefix.
  ASSERT_EQ(plan.bin_to_shard.size(), size_t{1} << plan.prefix_bits);
  EXPECT_EQ(plan.shard_of_key(0), plan.bin_to_shard.front());
  EXPECT_EQ(plan.shard_of_key(~uint64_t{0}), plan.bin_to_shard.back());
}

TEST(PlanShards, SingleDominantKeyCannotSplit) {
  // Every record carries the same key → one prefix bin holds everything →
  // the plan degenerates to one shard (the driver then runs in-memory).
  std::vector<record> recs(50000, record{hash64(7), 0});
  scratch_model model;
  size_t budget = model.footprint_bytes(recs.size(), sizeof(record)) / 8;
  auto plan = plan_shards(std::span<const record>(recs), record_key{}, budget,
                          model);
  EXPECT_EQ(plan.num_shards, 1u);
}

TEST(PlanShards, DeterministicForSameInput) {
  auto recs = generate_records(100000, {distribution_kind::zipfian, 5000}, 3);
  scratch_model model;
  size_t budget = model.footprint_bytes(recs.size(), sizeof(record)) / 4;
  auto a = plan_shards(std::span<const record>(recs), record_key{}, budget,
                       model);
  auto b = plan_shards(std::span<const record>(recs), record_key{}, budget,
                       model);
  EXPECT_EQ(a.num_shards, b.num_shards);
  EXPECT_EQ(a.prefix_bits, b.prefix_bits);
  EXPECT_EQ(a.bin_to_shard, b.bin_to_shard);
}

}  // namespace
}  // namespace parsemi
