// Tests for Phase 4 — light-bucket compaction + per-bucket semisort,
// including the counting-by-naming variant from §3.
#include "core/local_sort.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/bucket_plan.h"
#include "core/sampler.h"
#include "core/scatter.h"
#include "hashing/hash64.h"
#include "sort/radix_sort.h"
#include "test_helpers.h"
#include "util/rng.h"
#include "workloads/distributions.h"

namespace parsemi {
namespace {

// Shared context: plans are arena-backed views tied to the context they
// were built on; a static one keeps them valid for the binary's lifetime.
pipeline_context& test_ctx() {
  static pipeline_context ctx;
  return ctx;
}

struct pipeline_state {
  bucket_plan plan;
  scatter_storage<record> storage;
  std::vector<record> input;
};

pipeline_state run_through_scatter(size_t n, distribution_spec spec,
                                   const semisort_params& params) {
  auto in = generate_records(n, spec, 99);
  rng base(31);
  auto sample = sample_keys(std::span<const record>(in), record_key{},
                            params.sampling_p, base);
  radix_sort_u64(std::span<uint64_t>(sample));
  auto plan = build_bucket_plan(std::span<const uint64_t>(sample), n, params,
                                params.alpha, test_ctx());
  scatter_storage<record> storage(plan.total_slots, rng(5).next() | 1);
  auto result = scatter_records(std::span<const record>(in), storage, plan,
                                record_key{}, params, rng(7));
  EXPECT_EQ(result, scatter_result::ok);
  return {std::move(plan), std::move(storage), std::move(in)};
}

void check_local_sort(semisort_params params, distribution_spec spec) {
  auto st = run_through_scatter(120000, spec, params);
  std::vector<size_t> light_counts(st.plan.num_light);
  local_sort_light_buckets(st.storage, st.plan, record_key{}, params,
                           std::span<size_t>(light_counts));
  ASSERT_EQ(light_counts.size(), st.plan.num_light);

  size_t total_light = 0;
  for (size_t j = 0; j < st.plan.num_light; ++j) {
    size_t lo = st.plan.bucket_offset[st.plan.num_heavy + j];
    size_t count = light_counts[j];
    total_light += count;
    // Grouped: within the compacted prefix, equal keys are contiguous.
    std::span<const record> bucket(st.storage.slots.data() + lo, count);
    ASSERT_TRUE(testing::records_semisorted(bucket)) << "bucket " << j;
  }
  // Light record count: everything not routed to a heavy bucket.
  size_t expected_light = 0;
  for (const auto& r : st.input)
    if (st.plan.bucket_of(r.key) >= st.plan.num_heavy) expected_light++;
  EXPECT_EQ(total_light, expected_light);
}

TEST(LocalSort, StdSortVariantAllLight) {
  check_local_sort(semisort_params{},
                   {distribution_kind::uniform, 100000000});
}

TEST(LocalSort, StdSortVariantMixed) {
  check_local_sort(semisort_params{}, {distribution_kind::exponential, 1000});
}

TEST(LocalSort, CountingByNamingVariant) {
  semisort_params params;
  params.local_sort = semisort_params::local_sort_algo::counting_by_naming;
  check_local_sort(params, {distribution_kind::uniform, 100000000});
  check_local_sort(params, {distribution_kind::zipfian, 1000000});
}

TEST(LocalSort, CountingByNamingUnit) {
  // Direct unit test of the §3 naming + counting path on a single bucket.
  std::vector<record> bucket;
  rng r(3);
  for (int i = 0; i < 500; ++i)
    bucket.push_back({hash64(r.next_below(20)), static_cast<uint64_t>(i)});
  auto original = bucket;
  record_key get_key;
  internal::counting_sort_by_naming(std::span<record>(bucket), get_key);
  EXPECT_TRUE(testing::records_semisorted(bucket));
  EXPECT_TRUE(testing::records_permutation(bucket, original));
}

TEST(LocalSort, CountingByNamingIsStableWithinKey) {
  std::vector<record> bucket;
  for (int i = 0; i < 300; ++i)
    bucket.push_back({hash64(i % 3), static_cast<uint64_t>(i)});
  record_key get_key;
  internal::counting_sort_by_naming(std::span<record>(bucket), get_key);
  // Stability: payloads increase within each key group.
  for (size_t i = 1; i < bucket.size(); ++i)
    if (bucket[i].key == bucket[i - 1].key) {
      ASSERT_LT(bucket[i - 1].payload, bucket[i].payload);
    }
}

TEST(LocalSort, CountingByNamingEmptyAndSingleton) {
  std::vector<record> empty;
  record_key get_key;
  internal::counting_sort_by_naming(std::span<record>(empty), get_key);
  std::vector<record> one = {{5, 6}};
  internal::counting_sort_by_naming(std::span<record>(one), get_key);
  EXPECT_EQ(one[0], (record{5, 6}));
}

TEST(LocalSort, HeavyOnlyInputHasEmptyLightBuckets) {
  semisort_params params;
  auto st = run_through_scatter(100000, {distribution_kind::uniform, 10},
                                params);
  EXPECT_GT(st.plan.num_heavy, 0u);
  std::vector<size_t> light_counts(st.plan.num_light);
  local_sort_light_buckets(st.storage, st.plan, record_key{}, params,
                           std::span<size_t>(light_counts));
  size_t total_light = 0;
  for (size_t c : light_counts) total_light += c;
  EXPECT_EQ(total_light, 0u);  // N=10 keys all heavy at n=100000
}

}  // namespace
}  // namespace parsemi
