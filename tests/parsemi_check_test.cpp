// Tests for the parsemi-check static analyzer: each rule against its
// good/bad fixture pair, the waiver machinery, baseline round-trip, and the
// header-TU name mangling. Fixtures live in tests/lint_fixtures/ (a
// directory discover_files() deliberately skips).
#include "parsemi_check.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using parsemi_check::analysis;
using parsemi_check::analyze_source;
using parsemi_check::finding;
using parsemi_check::rule;

std::string fixture(const std::string& name) {
  std::string path = std::string(PARSEMI_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// Unwaived findings of one rule.
int hard_count(const analysis& a, rule r) {
  int n = 0;
  for (const finding& f : a.findings)
    if (f.r == r && !f.waived) ++n;
  return n;
}

int hard_total(const analysis& a) {
  int n = 0;
  for (const finding& f : a.findings)
    if (!f.waived) ++n;
  return n;
}

TEST(RuleNames, RoundTrip) {
  for (int i = 0; i < parsemi_check::kNumRules; ++i) {
    rule r = static_cast<rule>(i);
    rule back;
    ASSERT_TRUE(parsemi_check::rule_from_name(parsemi_check::rule_name(r), back));
    EXPECT_EQ(back, r);
  }
  rule dummy;
  EXPECT_FALSE(parsemi_check::rule_from_name("no-such-rule", dummy));
}

TEST(AtomicsOrder, BadFixtureFlagsEveryImplicitSeqCst) {
  analysis a = analyze_source(fixture("atomics_order_bad.cpp"),
                              "atomics_order_bad.cpp");
  // 3 member calls + 4 operator forms.
  EXPECT_EQ(hard_count(a, rule::atomics_order), 7);
}

TEST(AtomicsOrder, GoodFixtureIsClean) {
  analysis a = analyze_source(fixture("atomics_order_good.cpp"),
                              "atomics_order_good.cpp");
  EXPECT_EQ(hard_total(a), 0);
}

TEST(AtomicsRationale, InLoopRmwWithoutCommentFlaggedInScatterFiles) {
  std::string text = fixture("atomics_rationale_scatter_bad.cpp");
  analysis bad = analyze_source(text, "atomics_rationale_scatter_bad.cpp");
  EXPECT_EQ(hard_count(bad, rule::atomics_rationale), 1);
  // The rule keys on the file name: the same text under a neutral name is
  // clean.
  analysis neutral = analyze_source(text, "other_file.cpp");
  EXPECT_EQ(hard_count(neutral, rule::atomics_rationale), 0);
}

TEST(AtomicsRationale, NearbyCommentSatisfiesTheRule) {
  analysis a = analyze_source(fixture("atomics_rationale_scatter_good.cpp"),
                              "atomics_rationale_scatter_good.cpp");
  EXPECT_EQ(hard_total(a), 0);
}

TEST(ArenaLifetime, EscapesViaReturnAndMemberAreFlagged) {
  analysis a = analyze_source(fixture("arena_lifetime_bad.cpp"),
                              "arena_lifetime_bad.cpp");
  EXPECT_EQ(hard_count(a, rule::arena_lifetime), 2);
}

TEST(ArenaLifetime, ScopedUseAndUnscopedEscapeAreClean) {
  analysis a = analyze_source(fixture("arena_lifetime_good.cpp"),
                              "arena_lifetime_good.cpp");
  EXPECT_EQ(hard_total(a), 0);
}

TEST(ParallelCapture, RacyCapturedWritesAreFlagged) {
  analysis a = analyze_source(fixture("parallel_capture_bad.cpp"),
                              "parallel_capture_bad.cpp");
  // sum +=, ++hits, hits = 1.
  EXPECT_EQ(hard_count(a, rule::parallel_capture), 3);
}

TEST(ParallelCapture, PartitionedAtomicAndBodyLocalIdiomsAreClean) {
  analysis a = analyze_source(fixture("parallel_capture_good.cpp"),
                              "parallel_capture_good.cpp");
  EXPECT_EQ(hard_total(a), 0);
  // The degenerate-range write is waived, not silently ignored.
  int waived = 0;
  for (const finding& f : a.findings)
    if (f.waived) ++waived;
  EXPECT_EQ(waived, 1);  // out[i] is partitioned; ++calls is the waived one
}

TEST(NoGlobalScheduler, ShimCallsOutsideSchedulerDirAreFlagged) {
  analysis a = analyze_source(fixture("no_global_scheduler_bad.cpp"),
                              "no_global_scheduler_bad.cpp");
  // scheduler::get(), worker_pool::get(), and the namespace-qualified form.
  EXPECT_EQ(hard_count(a, rule::no_global_scheduler), 3);
}

TEST(NoGlobalScheduler, RoutedIdiomsAndWaivedShimCallAreClean) {
  analysis a = analyze_source(fixture("no_global_scheduler_good.cpp"),
                              "no_global_scheduler_good.cpp");
  EXPECT_EQ(hard_total(a), 0);
  // The compat-test shim call is waived, not silently ignored.
  int waived = 0;
  for (const finding& f : a.findings)
    if (f.waived && f.r == rule::no_global_scheduler) ++waived;
  EXPECT_EQ(waived, 1);
}

TEST(NoGlobalScheduler, SchedulerSourcesAreExempt) {
  // The same violating text under the scheduler's own path is clean: the
  // shim's definition (and its internal uses) live there by design.
  std::string text = fixture("no_global_scheduler_bad.cpp");
  analysis a = analyze_source(text, "src/scheduler/scheduler.h");
  EXPECT_EQ(hard_count(a, rule::no_global_scheduler), 0);
}

TEST(SimdFallback, MissingElseAllVectorAndNakedIntrinsicsAreFlagged) {
  analysis a = analyze_source(fixture("simd_fallback_bad.cpp"),
                              "simd_fallback_bad.cpp");
  // No-#else guard, all-branches-vector conditional, naked intrinsic.
  EXPECT_EQ(hard_count(a, rule::simd_fallback), 3);
}

TEST(SimdFallback, TieredInvertedNestedAndWaivedShapesAreClean) {
  analysis a = analyze_source(fixture("simd_fallback_good.cpp"),
                              "simd_fallback_good.cpp");
  EXPECT_EQ(hard_total(a), 0);
  // The naked probe is waived, not silently ignored.
  int waived = 0;
  for (const finding& f : a.findings)
    if (f.waived && f.r == rule::simd_fallback) ++waived;
  EXPECT_EQ(waived, 1);
}

TEST(SimdFallback, RuleIsScopedToSrcAndFixtureNames) {
  // The same violating text under tests/ or bench/ paths is clean — tests
  // and benches may poke at intrinsics directly — while src/ paths and
  // bare fixture names are in scope.
  std::string text = fixture("simd_fallback_bad.cpp");
  EXPECT_EQ(hard_count(analyze_source(text, "tests/some_test.cpp"),
                       rule::simd_fallback),
            0);
  EXPECT_EQ(hard_count(analyze_source(text, "bench/some_bench.cpp"),
                       rule::simd_fallback),
            0);
  EXPECT_EQ(hard_count(analyze_source(text, "src/util/widget.h"),
                       rule::simd_fallback),
            3);
}

TEST(SimdFallback, TheRealSimdHeaderIsClean) {
  // util/simd.h is the contract's author; it must satisfy its own rule.
  std::string path = std::string(PARSEMI_LINT_FIXTURE_DIR) +
                     "/../../src/util/simd.h";
  std::ifstream f(path, std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  analysis a = analyze_source(ss.str(), "src/util/simd.h");
  EXPECT_EQ(hard_count(a, rule::simd_fallback), 0);
}

TEST(Waivers, MissingReasonAndUnknownRuleAreFindings) {
  analysis a =
      analyze_source(fixture("waiver_bad.cpp"), "waiver_bad.cpp");
  bool saw_missing_reason = false, saw_unknown_rule = false;
  for (const finding& f : a.findings) {
    if (f.message.find("without a reason") != std::string::npos)
      saw_missing_reason = true;
    if (f.message.find("unknown rule") != std::string::npos)
      saw_unknown_rule = true;
  }
  EXPECT_TRUE(saw_missing_reason);
  EXPECT_TRUE(saw_unknown_rule);
  // The reason-less waiver does not suppress the a.store(1) finding.
  EXPECT_GE(hard_count(a, rule::atomics_order), 1);
}

TEST(Waivers, ReasonIsRecordedOnTheWaivedFinding) {
  std::string src =
      "#include <atomic>\n"
      "void f(std::atomic<int>& a) {\n"
      "  // parsemi-check: allow(atomics-order) -- prototype scaffolding\n"
      "  a.store(1);\n"
      "}\n";
  analysis a = analyze_source(src, "f.cpp");
  ASSERT_EQ(a.findings.size(), 1u);
  EXPECT_TRUE(a.findings[0].waived);
  EXPECT_EQ(a.findings[0].waiver_reason, "prototype scaffolding");
  EXPECT_EQ(hard_total(a), 0);
}

TEST(Baseline, SerializationIsDeterministicAndRoundTrips) {
  analysis a = analyze_source(fixture("parallel_capture_good.cpp"),
                              "parallel_capture_good.cpp");
  std::string b1 = parsemi_check::serialize_baseline(a.findings);
  std::string b2 = parsemi_check::serialize_baseline(a.findings);
  EXPECT_EQ(b1, b2);  // byte-identical replay
  EXPECT_TRUE(parsemi_check::diff_baseline(b1, a.findings).empty());
}

TEST(Baseline, DriftIsReportedBothWays) {
  analysis a = analyze_source(fixture("parallel_capture_good.cpp"),
                              "parallel_capture_good.cpp");
  // New waivers vs an empty baseline.
  EXPECT_FALSE(parsemi_check::diff_baseline("", a.findings).empty());
  // Stale baseline entries vs a clean tree.
  std::vector<finding> none;
  EXPECT_FALSE(parsemi_check::diff_baseline(
                   "atomics-order gone_file.cpp 3\n", none)
                   .empty());
}

TEST(Baseline, CheckedInBaselineMatchesCommentedWaiverCounts) {
  // The checked-in lint_baseline.txt parses and every entry names a real
  // rule. (The full-tree equality check is the `lint` target's job; here we
  // only guard the file's integrity so drift messages stay meaningful.)
  std::ifstream f(std::string(PARSEMI_LINT_BASELINE));
  ASSERT_TRUE(f.is_open()) << "missing " << PARSEMI_LINT_BASELINE;
  std::string line;
  int entries = 0;
  while (std::getline(f, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string rname, file;
    int count = 0;
    ASSERT_TRUE(static_cast<bool>(ls >> rname >> file >> count)) << line;
    rule r;
    EXPECT_TRUE(parsemi_check::rule_from_name(rname, r)) << rname;
    EXPECT_GT(count, 0) << line;
    ++entries;
  }
  EXPECT_GT(entries, 0);
}

TEST(SeededViolations, AnalyzerExitsNonZeroOnEachBadFixture) {
  // The acceptance contract: seeding any of the three violation classes
  // into a clean tree makes the tool fail. Each bad fixture must carry at
  // least one unwaived finding of its rule.
  struct seeded {
    const char* file;
    rule r;
  } cases[] = {
      {"atomics_order_bad.cpp", rule::atomics_order},
      {"arena_lifetime_bad.cpp", rule::arena_lifetime},
      {"parallel_capture_bad.cpp", rule::parallel_capture},
      {"no_global_scheduler_bad.cpp", rule::no_global_scheduler},
      {"simd_fallback_bad.cpp", rule::simd_fallback},
  };
  for (const auto& c : cases) {
    analysis a = analyze_source(fixture(c.file), c.file);
    EXPECT_GT(hard_count(a, c.r), 0) << c.file;
  }
}

TEST(HeaderTus, NameManglingIsStable) {
  EXPECT_EQ(parsemi_check::tu_name_for("core/arena.h"),
            "selfcheck__core_arena_h.cpp");
  EXPECT_EQ(parsemi_check::tu_name_for("scheduler/work_stealing_deque.h"),
            "selfcheck__scheduler_work_stealing_deque_h.cpp");
}

TEST(Discovery, FixtureCorpusIsExcludedFromTreeScans) {
  // Run discovery from the repo root if the layout is available; the
  // fixtures (full of violations by design) must never appear.
  std::string root = std::string(PARSEMI_LINT_FIXTURE_DIR) + "/../..";
  for (const std::string& f : parsemi_check::discover_files(root)) {
    EXPECT_EQ(f.find("lint_fixtures"), std::string::npos) << f;
  }
}

}  // namespace
