// Tests for the parsemi-check static analyzer: each rule against its
// good/bad fixture pair (including the phase-2 interprocedural rules), the
// waiver machinery, baseline round-trip, symbol-index determinism, the CLI
// exit-code contract, the JSON findings format, and the header-TU name
// mangling. Fixtures live in tests/lint_fixtures/ (a directory
// discover_files() deliberately skips).
#include "parsemi_check.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using parsemi_check::analysis;
using parsemi_check::analyze_project;
using parsemi_check::analyze_source;
using parsemi_check::finding;
using parsemi_check::project_analysis;
using parsemi_check::rule;
using parsemi_check::run_cli;
using parsemi_check::source_file;

std::string fixture_path(const std::string& name) {
  return std::string(PARSEMI_LINT_FIXTURE_DIR) + "/" + name;
}

std::string fixture(const std::string& name) {
  std::string path = fixture_path(name);
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// Unwaived findings of one rule.
int hard_count(const analysis& a, rule r) {
  int n = 0;
  for (const finding& f : a.findings)
    if (f.r == r && !f.waived) ++n;
  return n;
}

int hard_total(const analysis& a) {
  int n = 0;
  for (const finding& f : a.findings)
    if (!f.waived) ++n;
  return n;
}

bool any_message_contains(const analysis& a, const std::string& needle) {
  for (const finding& f : a.findings) {
    if (f.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

std::string write_temp(const std::string& name, const std::string& text) {
  std::string path = testing::TempDir() + name;
  std::ofstream f(path, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << path;
  f << text;
  return path;
}

TEST(RuleNames, RoundTrip) {
  for (int i = 0; i < parsemi_check::kNumRules; ++i) {
    rule r = static_cast<rule>(i);
    rule back;
    ASSERT_TRUE(parsemi_check::rule_from_name(parsemi_check::rule_name(r), back));
    EXPECT_EQ(back, r);
  }
  rule dummy;
  EXPECT_FALSE(parsemi_check::rule_from_name("no-such-rule", dummy));
  EXPECT_FALSE(parsemi_check::rule_from_name("arena-lifetime", dummy))
      << "retired v1 rule name must not resolve";
}

TEST(AtomicsOrder, BadFixtureFlagsEveryImplicitSeqCst) {
  analysis a = analyze_source(fixture("atomics_order_bad.cpp"),
                              "atomics_order_bad.cpp");
  // 3 member calls + 4 operator forms.
  EXPECT_EQ(hard_count(a, rule::atomics_order), 7);
}

TEST(AtomicsOrder, GoodFixtureIsClean) {
  analysis a = analyze_source(fixture("atomics_order_good.cpp"),
                              "atomics_order_good.cpp");
  EXPECT_EQ(hard_total(a), 0);
}

TEST(AtomicsRationale, InLoopRmwWithoutCommentFlaggedInScatterFiles) {
  std::string text = fixture("atomics_rationale_scatter_bad.cpp");
  analysis bad = analyze_source(text, "atomics_rationale_scatter_bad.cpp");
  EXPECT_EQ(hard_count(bad, rule::atomics_rationale), 1);
  // The rule keys on the file name: the same text under a neutral name is
  // clean.
  analysis neutral = analyze_source(text, "other_file.cpp");
  EXPECT_EQ(hard_count(neutral, rule::atomics_rationale), 0);
}

TEST(AtomicsRationale, NearbyCommentSatisfiesTheRule) {
  analysis a = analyze_source(fixture("atomics_rationale_scatter_good.cpp"),
                              "atomics_rationale_scatter_good.cpp");
  EXPECT_EQ(hard_total(a), 0);
}

TEST(ArenaEscape, EveryEscapeShapeIsFlagged) {
  analysis a = analyze_source(fixture("arena_escape_bad.cpp"),
                              "arena_escape_bad.cpp");
  // Direct return, tainted-local return, return-after-rewind, member
  // store, laundered through a helper.
  EXPECT_EQ(hard_count(a, rule::arena_escape), 5);
  EXPECT_TRUE(any_message_contains(a, "after its arena_scope rewound"));
  EXPECT_TRUE(any_message_contains(a, "stored into member 'stash_'"));
}

TEST(ArenaEscape, HelperLaunderingIsFollowedThroughTheIndex) {
  // The laundering case only works because the summaries mark
  // make_buffer() as returning fresh arena memory; the binding
  // `int* tmp = make_buffer(a, n);` under an active scope taints tmp.
  analysis a = analyze_source(fixture("arena_escape_bad.cpp"),
                              "arena_escape_bad.cpp");
  bool laundered = false;
  for (const finding& f : a.findings) {
    if (f.r == rule::arena_escape && f.line == 51) laundered = true;
  }
  EXPECT_TRUE(laundered) << "make_buffer() result escape not tracked";
}

TEST(ArenaEscape, ValueUsesUnscopedAllocsAndRebindsAreClean) {
  // The good fixture holds exactly the shapes that used to need "value,
  // not a pointer" waivers — the dataflow must prove them instead.
  analysis a = analyze_source(fixture("arena_escape_good.cpp"),
                              "arena_escape_good.cpp");
  EXPECT_EQ(hard_total(a), 0);
}

TEST(SpillLifetime, EveryLifetimeViolationIsFlagged) {
  // The rule is scoped to src/: feed the fixture under a src/ path.
  analysis a = analyze_source(fixture("spill_lifetime_bad.cpp"),
                              "src/spill_lifetime_bad.cpp");
  // Return escape, view-of-view escape, use-after-reset, use-after-block
  // -exit, use-after-move.
  EXPECT_EQ(hard_count(a, rule::spill_lifetime), 5);
  EXPECT_TRUE(any_message_contains(a, "after the owner was reset()"));
  EXPECT_TRUE(any_message_contains(a, "moved away"));
  EXPECT_TRUE(any_message_contains(a, "destroyed at the end of its block"));
}

TEST(SpillLifetime, OwnedUsesMoveTransfersAndParamOwnersAreClean) {
  analysis a = analyze_source(fixture("spill_lifetime_good.cpp"),
                              "src/spill_lifetime_good.cpp");
  EXPECT_EQ(hard_total(a), 0);
}

TEST(SpillLifetime, RuleIsScopedToSrc) {
  // Tests/benches may map and drop spill views for harness purposes.
  analysis a = analyze_source(fixture("spill_lifetime_bad.cpp"),
                              "tests/spill_harness.cpp");
  EXPECT_EQ(hard_count(a, rule::spill_lifetime), 0);
}

TEST(PoolRouting, DefaultPoolGrabAndUnroutedRootsAreFlagged) {
  analysis a = analyze_source(fixture("pool_routing_bad.cpp"),
                              "src/pool_routing_bad.cpp");
  // One default_pool() call site + two unrouted spawning roots (one
  // spawns directly, one transitively through detail::spawn_leaf).
  EXPECT_EQ(hard_count(a, rule::pool_routing), 3);
  EXPECT_TRUE(any_message_contains(a, "default_pool() grabbed directly"));
  EXPECT_TRUE(any_message_contains(a, "'transitive_root'"));
}

TEST(PoolRouting, RoutedParamsAndIndexedCallersAreClean) {
  analysis a = analyze_source(fixture("pool_routing_good.cpp"),
                              "src/pool_routing_good.cpp");
  EXPECT_EQ(hard_total(a), 0);
}

TEST(PoolRouting, SchedulerSourcesAreExempt) {
  // The scheduler implements default_pool(); its own sources may spawn
  // and grab pools freely.
  analysis a = analyze_source(fixture("pool_routing_bad.cpp"),
                              "src/scheduler/pool_impl.cpp");
  EXPECT_EQ(hard_count(a, rule::pool_routing), 0);
}

TEST(PlannerPure, ArenaScopesAndSpawnsInsideThePlannerAreFlagged) {
  // The rule is scoped to src/**/planner.h: feed the fixture under the
  // planner's path.
  analysis a = analyze_source(fixture("planner_pure_bad.cpp"),
                              "src/core/planner.h");
  // One arena_scope opener, one direct spawner, and one function doing
  // both (two findings on it).
  EXPECT_EQ(hard_count(a, rule::planner_pure), 4);
  EXPECT_TRUE(any_message_contains(a, "opens an arena_scope inside the"));
  EXPECT_TRUE(any_message_contains(a, "spawns parallel work inside the"));
  EXPECT_TRUE(any_message_contains(a, "'plan_doing_everything'"));
}

TEST(PlannerPure, DelegatingProbesToTheirHomeHeadersIsClean) {
  analysis a = analyze_source(fixture("planner_pure_good.cpp"),
                              "src/core/planner.h");
  EXPECT_EQ(hard_total(a), 0);
}

TEST(PlannerPure, RuleIsScopedToPlannerHeaders) {
  // The same impure text anywhere else is this rule's business nowhere
  // else — probes legitimately own scratch and parallelism in their home
  // headers.
  analysis a = analyze_source(fixture("planner_pure_bad.cpp"),
                              "src/core/key_domain.h");
  EXPECT_EQ(hard_count(a, rule::planner_pure), 0);
}

TEST(ParallelCapture, RacyCapturedWritesAreFlagged) {
  analysis a = analyze_source(fixture("parallel_capture_bad.cpp"),
                              "parallel_capture_bad.cpp");
  // sum +=, ++hits, the shared par_do name, the alias write, the nested
  // lambda write. (The par_do pair writes the same name on one line with
  // an identical message, so it collapses to one finding.)
  EXPECT_EQ(hard_count(a, rule::parallel_capture), 5);
  EXPECT_TRUE(any_message_contains(a, "through reference alias 't'"));
}

TEST(ParallelCapture, SanctionedIdiomsAndDegenerateRangesAreClean) {
  analysis a = analyze_source(fixture("parallel_capture_good.cpp"),
                              "parallel_capture_good.cpp");
  EXPECT_EQ(hard_total(a), 0);
  // The shared stats counter is waived, not silently ignored; the
  // degenerate-range and disjoint-par_do shapes need no waiver at all.
  int waived = 0;
  for (const finding& f : a.findings)
    if (f.waived) ++waived;
  EXPECT_EQ(waived, 1);
}

TEST(NoGlobalScheduler, ShimCallsOutsideSchedulerDirAreFlagged) {
  analysis a = analyze_source(fixture("no_global_scheduler_bad.cpp"),
                              "no_global_scheduler_bad.cpp");
  // scheduler::get(), worker_pool::get(), and the namespace-qualified form.
  EXPECT_EQ(hard_count(a, rule::no_global_scheduler), 3);
}

TEST(NoGlobalScheduler, RoutedIdiomsAndWaivedShimCallAreClean) {
  analysis a = analyze_source(fixture("no_global_scheduler_good.cpp"),
                              "no_global_scheduler_good.cpp");
  EXPECT_EQ(hard_total(a), 0);
  // The compat-test shim call is waived, not silently ignored.
  int waived = 0;
  for (const finding& f : a.findings)
    if (f.waived && f.r == rule::no_global_scheduler) ++waived;
  EXPECT_EQ(waived, 1);
}

TEST(NoGlobalScheduler, SchedulerSourcesAreExempt) {
  // The same violating text under the scheduler's own path is clean: the
  // shim's definition (and its internal uses) live there by design.
  std::string text = fixture("no_global_scheduler_bad.cpp");
  analysis a = analyze_source(text, "src/scheduler/scheduler.h");
  EXPECT_EQ(hard_count(a, rule::no_global_scheduler), 0);
}

TEST(SimdFallback, MissingElseAllVectorAndNakedIntrinsicsAreFlagged) {
  analysis a = analyze_source(fixture("simd_fallback_bad.cpp"),
                              "simd_fallback_bad.cpp");
  // No-#else guard, all-branches-vector conditional, naked intrinsic.
  EXPECT_EQ(hard_count(a, rule::simd_fallback), 3);
}

TEST(SimdFallback, TieredInvertedNestedAndWaivedShapesAreClean) {
  analysis a = analyze_source(fixture("simd_fallback_good.cpp"),
                              "simd_fallback_good.cpp");
  EXPECT_EQ(hard_total(a), 0);
  // The naked probe is waived, not silently ignored.
  int waived = 0;
  for (const finding& f : a.findings)
    if (f.waived && f.r == rule::simd_fallback) ++waived;
  EXPECT_EQ(waived, 1);
}

TEST(SimdFallback, RuleIsScopedToSrcAndFixtureNames) {
  // The same violating text under tests/ or bench/ paths is clean — tests
  // and benches may poke at intrinsics directly — while src/ paths and
  // bare fixture names are in scope.
  std::string text = fixture("simd_fallback_bad.cpp");
  EXPECT_EQ(hard_count(analyze_source(text, "tests/some_test.cpp"),
                       rule::simd_fallback),
            0);
  EXPECT_EQ(hard_count(analyze_source(text, "bench/some_bench.cpp"),
                       rule::simd_fallback),
            0);
  EXPECT_EQ(hard_count(analyze_source(text, "src/util/widget.h"),
                       rule::simd_fallback),
            3);
}

TEST(SimdFallback, TheRealSimdHeaderIsClean) {
  // util/simd.h is the contract's author; it must satisfy its own rule.
  std::string path = std::string(PARSEMI_LINT_FIXTURE_DIR) +
                     "/../../src/util/simd.h";
  std::ifstream f(path, std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  analysis a = analyze_source(ss.str(), "src/util/simd.h");
  EXPECT_EQ(hard_count(a, rule::simd_fallback), 0);
}

TEST(Waivers, MissingReasonAndUnknownRuleAreFindings) {
  analysis a =
      analyze_source(fixture("waiver_bad.cpp"), "waiver_bad.cpp");
  bool saw_missing_reason = false, saw_unknown_rule = false;
  for (const finding& f : a.findings) {
    if (f.message.find("without a reason") != std::string::npos)
      saw_missing_reason = true;
    if (f.message.find("unknown rule") != std::string::npos)
      saw_unknown_rule = true;
  }
  EXPECT_TRUE(saw_missing_reason);
  EXPECT_TRUE(saw_unknown_rule);
  // The reason-less waiver does not suppress the a.store(1) finding.
  EXPECT_GE(hard_count(a, rule::atomics_order), 1);
}

TEST(Waivers, ReasonIsRecordedOnTheWaivedFinding) {
  std::string src =
      "#include <atomic>\n"
      "void f(std::atomic<int>& a) {\n"
      "  // parsemi-check: allow(atomics-order) -- prototype scaffolding\n"
      "  a.store(1);\n"
      "}\n";
  analysis a = analyze_source(src, "f.cpp");
  ASSERT_EQ(a.findings.size(), 1u);
  EXPECT_TRUE(a.findings[0].waived);
  EXPECT_EQ(a.findings[0].waiver_reason, "prototype scaffolding");
  EXPECT_EQ(hard_total(a), 0);
}

TEST(Baseline, SerializationIsDeterministicAndRoundTrips) {
  analysis a = analyze_source(fixture("parallel_capture_good.cpp"),
                              "parallel_capture_good.cpp");
  std::string b1 = parsemi_check::serialize_baseline(a.findings);
  std::string b2 = parsemi_check::serialize_baseline(a.findings);
  EXPECT_EQ(b1, b2);  // byte-identical replay
  EXPECT_TRUE(parsemi_check::diff_baseline(b1, a.findings).empty());
}

TEST(Baseline, DriftIsReportedBothWays) {
  analysis a = analyze_source(fixture("parallel_capture_good.cpp"),
                              "parallel_capture_good.cpp");
  // New waivers vs an empty baseline.
  EXPECT_FALSE(parsemi_check::diff_baseline("", a.findings).empty());
  // Stale baseline entries vs a clean tree.
  std::vector<finding> none;
  EXPECT_FALSE(parsemi_check::diff_baseline(
                   "atomics-order gone_file.cpp 3\n", none)
                   .empty());
}

TEST(Baseline, CheckedInBaselineParsesAndRecordsNoWaivers) {
  // parsemi-check v2 retired every historical waiver: the value-return
  // shapes are proven by arena-escape's carries discipline and the
  // degenerate-range / disjoint-branch captures are exempt by analysis.
  // The checked-in baseline must parse and stay empty — a data line
  // reappearing here means a new waiver slipped in.
  std::ifstream f(std::string(PARSEMI_LINT_BASELINE));
  ASSERT_TRUE(f.is_open()) << "missing " << PARSEMI_LINT_BASELINE;
  std::string line;
  int entries = 0;
  while (std::getline(f, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string rname, file;
    int count = 0;
    ASSERT_TRUE(static_cast<bool>(ls >> rname >> file >> count)) << line;
    rule r;
    EXPECT_TRUE(parsemi_check::rule_from_name(rname, r)) << rname;
    EXPECT_GT(count, 0) << line;
    ++entries;
  }
  EXPECT_EQ(entries, 0);
}

TEST(SeededViolations, AnalyzerFlagsEachBadFixture) {
  // The acceptance contract: seeding any violation class into a clean
  // tree makes the tool fail. Each bad fixture must carry at least one
  // unwaived finding of its rule (src/-scoped rules get a src/ path).
  struct seeded {
    const char* file;
    const char* as_path;
    rule r;
  } cases[] = {
      {"atomics_order_bad.cpp", "atomics_order_bad.cpp",
       rule::atomics_order},
      {"arena_escape_bad.cpp", "arena_escape_bad.cpp", rule::arena_escape},
      {"parallel_capture_bad.cpp", "parallel_capture_bad.cpp",
       rule::parallel_capture},
      {"no_global_scheduler_bad.cpp", "no_global_scheduler_bad.cpp",
       rule::no_global_scheduler},
      {"simd_fallback_bad.cpp", "simd_fallback_bad.cpp",
       rule::simd_fallback},
      {"spill_lifetime_bad.cpp", "src/spill_lifetime_bad.cpp",
       rule::spill_lifetime},
      {"pool_routing_bad.cpp", "src/pool_routing_bad.cpp",
       rule::pool_routing},
  };
  for (const auto& c : cases) {
    analysis a = analyze_source(fixture(c.file), c.as_path);
    EXPECT_GT(hard_count(a, c.r), 0) << c.file;
  }
}

// ---- symbol index --------------------------------------------------------

TEST(SymbolIndex, ExtractsParamKindsAndBodyFacts) {
  project_analysis pa = analyze_project(
      {{"src/pool_routing_good.cpp", fixture("pool_routing_good.cpp")}});
  ASSERT_TRUE(pa.index.errors.empty());
  const parsemi_check::func_entry* routed = nullptr;
  for (const auto& fe : pa.index.functions) {
    if (fe.name.find("routed_by_pool") != std::string::npos &&
        !fe.is_lambda) {
      routed = &fe;
    }
  }
  ASSERT_NE(routed, nullptr);
  EXPECT_TRUE(routed->takes_pool());
  EXPECT_TRUE(routed->is_routed());
  EXPECT_TRUE(routed->spawns_parallel);
}

TEST(SymbolIndex, SerializationIsByteIdenticalAcrossRuns) {
  std::vector<source_file> files = {
      {"src/a.cpp", fixture("pool_routing_good.cpp")},
      {"src/b.cpp", fixture("spill_lifetime_good.cpp")},
  };
  project_analysis p1 = analyze_project(files);
  project_analysis p2 = analyze_project(files);
  std::string s1 = parsemi_check::serialize_index(p1.index);
  std::string s2 = parsemi_check::serialize_index(p2.index);
  EXPECT_EQ(s1, s2);  // same tree -> byte-identical lint_index artifact
  EXPECT_NE(s1.find("# parsemi-check symbol index"), std::string::npos);
}

TEST(SymbolIndex, SerializationRoundTripsThroughParse) {
  project_analysis pa = analyze_project(
      {{"src/x.cpp", fixture("arena_escape_bad.cpp")}});
  ASSERT_TRUE(pa.index.errors.empty());
  std::string text = parsemi_check::serialize_index(pa.index);
  parsemi_check::symbol_index back;
  ASSERT_TRUE(parsemi_check::parse_index(text, back));
  ASSERT_EQ(back.functions.size(), pa.index.functions.size());
  for (size_t i = 0; i < back.functions.size(); ++i) {
    EXPECT_EQ(back.functions[i].name, pa.index.functions[i].name);
    EXPECT_EQ(back.functions[i].calls, pa.index.functions[i].calls);
    EXPECT_EQ(back.functions[i].returns_ptr_like,
              pa.index.functions[i].returns_ptr_like);
  }
  parsemi_check::symbol_index junk;
  EXPECT_FALSE(parsemi_check::parse_index("not an index\n", junk));
}

TEST(SymbolIndex, UnbalancedBracesAreAnIndexErrorNotGarbageEntries) {
  project_analysis pa = analyze_project(
      {{"src/trunc.cpp", "void f() { int x = 1;\n"}});
  EXPECT_FALSE(pa.index.errors.empty());
}

// ---- CLI exit-code contract ----------------------------------------------

TEST(ExitCodes, CleanFileExitsZero) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({fixture_path("arena_escape_good.cpp")}, out, err),
            parsemi_check::kExitClean);
}

TEST(ExitCodes, FindingsExitOne) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({fixture_path("arena_escape_bad.cpp")}, out, err),
            parsemi_check::kExitFindings);
  EXPECT_NE(err.str().find("arena-escape"), std::string::npos);
}

TEST(ExitCodes, UsageErrorsExitTwo) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"--no-such-flag"}, out, err),
            parsemi_check::kExitUsage);
  EXPECT_EQ(run_cli({}, out, err), parsemi_check::kExitUsage);
  EXPECT_EQ(run_cli({"/definitely/not/a/file.cpp"}, out, err),
            parsemi_check::kExitUsage);
  EXPECT_EQ(run_cli({"--format=yaml"}, out, err),
            parsemi_check::kExitUsage);
}

TEST(ExitCodes, BaselineDriftAloneExitsThree) {
  // One waived finding vs an empty baseline: no hard findings, but the
  // waiver population drifted.
  std::string empty = write_temp("empty_baseline.txt", "");
  std::ostringstream out, err;
  int code = run_cli({fixture_path("parallel_capture_good.cpp"),
                      "--baseline", empty},
                     out, err);
  EXPECT_EQ(code, parsemi_check::kExitBaselineDrift);
  EXPECT_NE(err.str().find("baseline drift"), std::string::npos);
}

TEST(ExitCodes, IndexBuildFailureExitsFour) {
  std::string trunc =
      write_temp("truncated.cpp", "void f() { int x = 1;\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({trunc}, out, err), parsemi_check::kExitIndexError);
  EXPECT_NE(err.str().find("index error"), std::string::npos);
}

TEST(ExitCodes, HelpExitsZero) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"--help"}, out, err), parsemi_check::kExitClean);
  EXPECT_NE(out.str().find("exit:"), std::string::npos);
}

// ---- JSON findings lane --------------------------------------------------

TEST(JsonFormat, StableShapeAndSortedFindings) {
  analysis a = analyze_source(fixture("arena_escape_bad.cpp"),
                              "arena_escape_bad.cpp");
  std::string j = parsemi_check::to_json(a, 1, {});
  EXPECT_NE(j.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(j.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(j.find("\"rule\": \"arena-escape\""), std::string::npos);
  EXPECT_NE(j.find("\"index_errors\": []"), std::string::npos);
  // Findings are (file, line, rule)-sorted: line numbers appear ascending.
  size_t prev = 0;
  int last_line = 0;
  for (const finding& f : a.findings) {
    std::string key = "\"line\": " + std::to_string(f.line);
    size_t at = j.find(key, prev);
    ASSERT_NE(at, std::string::npos) << key;
    EXPECT_GE(f.line, last_line);
    prev = at;
    last_line = f.line;
  }
  // Emission is deterministic.
  EXPECT_EQ(j, parsemi_check::to_json(a, 1, {}));
}

TEST(JsonFormat, CliEmitsJsonOnStdout) {
  std::ostringstream out, err;
  int code = run_cli({fixture_path("arena_escape_bad.cpp"),
                      "--format=json"},
                     out, err);
  EXPECT_EQ(code, parsemi_check::kExitFindings);
  EXPECT_NE(out.str().find("\"version\": 1"), std::string::npos);
  EXPECT_NE(out.str().find("\"counts\": {\"hard\": 5, \"waived\": 0}"),
            std::string::npos);
  // Human chatter stays on stderr; stdout is pure JSON.
  EXPECT_EQ(out.str()[0], '{');
}

TEST(JsonFormat, WaiverReasonIsCarried) {
  analysis a = analyze_source(fixture("parallel_capture_good.cpp"),
                              "parallel_capture_good.cpp");
  std::string j = parsemi_check::to_json(a, 1, {});
  EXPECT_NE(j.find("\"waived\": true"), std::string::npos);
  EXPECT_NE(j.find("\"waiver_reason\": \"stats counter; torn reads ok\""),
            std::string::npos);
}

// ---- header TUs and discovery --------------------------------------------

TEST(HeaderTus, NameManglingIsStable) {
  EXPECT_EQ(parsemi_check::tu_name_for("core/arena.h"),
            "selfcheck__core_arena_h.cpp");
  EXPECT_EQ(parsemi_check::tu_name_for("scheduler/work_stealing_deque.h"),
            "selfcheck__scheduler_work_stealing_deque_h.cpp");
}

TEST(Discovery, FixtureCorpusIsExcludedFromTreeScans) {
  // Run discovery from the repo root if the layout is available; the
  // fixtures (full of violations by design) must never appear.
  std::string root = std::string(PARSEMI_LINT_FIXTURE_DIR) + "/../..";
  for (const std::string& f : parsemi_check::discover_files(root)) {
    EXPECT_EQ(f.find("lint_fixtures"), std::string::npos) << f;
  }
}

TEST(Discovery, ExamplesAreScanned) {
  // Satellite of the v2 issue: examples/ is part of the linted surface.
  std::string root = std::string(PARSEMI_LINT_FIXTURE_DIR) + "/../..";
  bool saw_example = false;
  for (const std::string& f : parsemi_check::discover_files(root)) {
    if (f.rfind("examples/", 0) == 0) saw_example = true;
  }
  EXPECT_TRUE(saw_example);
}

}  // namespace
