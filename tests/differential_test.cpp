// Randomized differential testing: the parallel semisort against the
// sequential chained-hash reference, over randomly drawn (distribution,
// size, parameter-knob, seed) configurations. Catches interactions no
// hand-written case covers.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/semisort.h"
#include "core/sequential.h"
#include "test_helpers.h"
#include "util/rng.h"
#include "workloads/distributions.h"

namespace parsemi {
namespace {

distribution_spec random_spec(rng& r) {
  auto kind = static_cast<distribution_kind>(r.next_below(3));
  uint64_t param = 0;
  switch (kind) {
    case distribution_kind::uniform:
      param = 1 + r.next_below(1ull << (1 + r.next_below(30)));
      break;
    case distribution_kind::exponential:
      param = 1 + r.next_below(1ull << (1 + r.next_below(20)));
      break;
    case distribution_kind::zipfian:
      param = 1 + r.next_below(1ull << (1 + r.next_below(27)));
      break;
  }
  return {kind, param};
}

semisort_params random_params(rng& r) {
  semisort_params p;
  p.sampling_p = 1.0 / static_cast<double>(1 << (2 + r.next_below(5)));
  p.delta = 2 + r.next_below(64);
  p.num_hash_ranges = 1ull << (3 + r.next_below(15));
  p.merge_light_buckets = r.next_below(2) == 0;
  p.round_to_pow2 = r.next_below(2) == 0;
  p.light_bucket_samples = 8 + r.next_below(256);
  p.alpha = 1.05 + r.next_double() * 0.5;
  p.probing = r.next_below(4) == 0 ? semisort_params::probe_strategy::random
                                   : semisort_params::probe_strategy::linear;
  p.local_sort = r.next_below(4) == 0
                     ? semisort_params::local_sort_algo::counting_by_naming
                     : semisort_params::local_sort_algo::std_sort;
  p.sample_sort_with = static_cast<semisort_params::sample_sorter>(
      r.next_below(3));
  p.pack_intervals = 1 + r.next_below(5000);
  p.seed = r.next();
  return p;
}

TEST(Differential, RandomConfigurationsAgreeWithReference) {
  rng meta(20260706);
  for (int trial = 0; trial < 40; ++trial) {
    size_t n = 1000 + meta.next_below(120000);
    distribution_spec spec = random_spec(meta);
    semisort_params params = random_params(meta);
    auto in = generate_records(n, spec, meta.next());

    std::vector<record> out(n);
    semisort_hashed(std::span<const record>(in), std::span<record>(out),
                    record_key{}, params);

    auto reference = semisort_seq_chained(std::span<const record>(in));

    ASSERT_TRUE(testing::records_semisorted(out))
        << "trial " << trial << " " << spec.name() << "(" << spec.parameter
        << ") n=" << n;
    ASSERT_TRUE(testing::records_permutation(out, reference))
        << "trial " << trial;
    // Group-size histograms must agree exactly.
    auto got = testing::key_counts(std::span<const record>(out), record_key{});
    auto want =
        testing::key_counts(std::span<const record>(reference), record_key{});
    ASSERT_EQ(got.size(), want.size()) << "trial " << trial;
    for (auto& [k, c] : want) ASSERT_EQ(got.at(k), c) << "trial " << trial;
  }
}

TEST(Differential, GeneralApiAgainstSortBaseline) {
  rng meta(777);
  for (int trial = 0; trial < 15; ++trial) {
    size_t n = 500 + meta.next_below(40000);
    uint64_t vocab = 1 + meta.next_below(1 << 12);
    std::vector<uint64_t> values(n);
    for (auto& v : values) v = meta.next_below(vocab);
    auto out = semisort(std::span<const uint64_t>(values),
                        [](uint64_t v) { return v; },
                        [](uint64_t v) { return hash64(v); });
    ASSERT_EQ(out.size(), n);
    ASSERT_TRUE(testing::is_semisorted(
        std::span<const uint64_t>(out), [](uint64_t v) { return v; }))
        << "trial " << trial;
    std::vector<uint64_t> sorted_out(out), sorted_in(values);
    std::sort(sorted_out.begin(), sorted_out.end());
    std::sort(sorted_in.begin(), sorted_in.end());
    ASSERT_EQ(sorted_out, sorted_in) << "trial " << trial;
  }
}

}  // namespace
}  // namespace parsemi
