// Randomized differential testing, property-based: the parallel semisort
// against the sequential chained-hash reference over randomly drawn
// (distribution, size, parameter-knob, worker-count, sched-fuzz-seed)
// configurations. On failure the config is shrunk greedily (smaller n,
// fuzzing off, one worker, knobs back to defaults) and a one-line repro
// command is printed — see tests/proptest.h.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <sstream>
#include <vector>

#include "core/semisort.h"
#include "core/sequential.h"
#include "proptest.h"
#include "test_helpers.h"
#include "util/rng.h"
#include "workloads/distributions.h"

namespace parsemi {
namespace {

struct diff_config {
  size_t n = 0;
  distribution_spec spec{distribution_kind::uniform, 1000};
  semisort_params params;
  bool use_context = false;
  size_t memory_budget = 0;  // 0 = unlimited; else forces the shard driver
  uint64_t data_seed = 0;
  uint64_t sched_seed = 0;  // 0 = schedule fuzzing off
  int workers = 0;          // 0 = leave pool untouched
};

distribution_spec random_spec(rng& r) {
  auto kind = static_cast<distribution_kind>(r.next_below(3));
  uint64_t param = 0;
  switch (kind) {
    case distribution_kind::uniform:
      param = 1 + r.next_below(1ull << (1 + r.next_below(30)));
      break;
    case distribution_kind::exponential:
      param = 1 + r.next_below(1ull << (1 + r.next_below(20)));
      break;
    case distribution_kind::zipfian:
      param = 1 + r.next_below(1ull << (1 + r.next_below(27)));
      break;
  }
  return {kind, param};
}

semisort_params random_params(rng& r) {
  semisort_params p;
  p.sampling_p = 1.0 / static_cast<double>(1 << (2 + r.next_below(5)));
  p.delta = 2 + r.next_below(64);
  p.num_hash_ranges = 1ull << (3 + r.next_below(15));
  p.merge_light_buckets = r.next_below(2) == 0;
  p.round_to_pow2 = r.next_below(2) == 0;
  p.light_bucket_samples = 8 + r.next_below(256);
  p.alpha = 1.05 + r.next_double() * 0.5;
  p.probing = r.next_below(4) == 0 ? semisort_params::probe_strategy::random
                                   : semisort_params::probe_strategy::linear;
  p.scatter_with =
      static_cast<semisort_params::scatter_strategy>(r.next_below(4));
  p.local_sort = r.next_below(4) == 0
                     ? semisort_params::local_sort_algo::counting_by_naming
                     : semisort_params::local_sort_algo::std_sort;
  p.sample_sort_with =
      static_cast<semisort_params::sample_sorter>(r.next_below(3));
  p.pack_intervals = 1 + r.next_below(5000);
  p.seed = r.next();
  return p;
}

diff_config generate(rng& r) {
  diff_config c;
  c.n = 1000 + proptest::log_uniform_u64(r, 1, 120000);
  c.spec = random_spec(r);
  c.params = random_params(r);
  c.use_context = proptest::chance(r, 0.25);
  // ~30%: a budget of 32K..16M bytes — far under most drawn inputs'
  // footprint, so the sharded (out-of-core) route runs through the same
  // differential property as the in-memory path.
  if (proptest::chance(r, 0.3)) {
    c.memory_budget = size_t{1} << (15 + r.next_below(10));
  }
  c.data_seed = r.next();
  c.sched_seed = sched_fuzz::kCompiledIn ? (r.next() | 1) : 0;
  c.workers = proptest::pick(r, {0, 1, 2, 3, 4});
  return c;
}

std::string describe(const diff_config& c) {
  std::ostringstream os;
  os << c.spec.name() << "(" << c.spec.parameter << ") n=" << c.n
     << " p=" << c.params.sampling_p << " delta=" << c.params.delta
     << " ranges=" << c.params.num_hash_ranges
     << " merge=" << c.params.merge_light_buckets
     << " pow2=" << c.params.round_to_pow2 << " alpha=" << c.params.alpha
     << " probe=" << (c.params.probing == semisort_params::probe_strategy::random
                          ? "random"
                          : "linear")
     << " scatter=" << static_cast<int>(c.params.scatter_with)
     << " localsort=" << static_cast<int>(c.params.local_sort)
     << " samplesort=" << static_cast<int>(c.params.sample_sort_with)
     << " pack=" << c.params.pack_intervals << " ctx=" << c.use_context
     << " budget=" << c.memory_budget
     << " data_seed=" << c.data_seed << " sched_seed=" << c.sched_seed
     << " workers=" << c.workers;
  return os.str();
}

std::optional<std::string> hashed_agrees_with_reference(const diff_config& c) {
  proptest::scoped_workers w(c.workers);
  sched_fuzz::scoped_enable fuzz(c.sched_seed);
  pipeline_context ctx;
  semisort_params params = c.params;
  if (c.use_context) params.context = &ctx;
  params.memory_budget_bytes = c.memory_budget;

  auto in = generate_records(c.n, c.spec, c.data_seed);
  std::vector<record> out(c.n);
  semisort_hashed(std::span<const record>(in), std::span<record>(out),
                  record_key{}, params);
  auto reference = semisort_seq_chained(std::span<const record>(in));

  if (!testing::records_semisorted(out)) return "output not semisorted";
  if (!testing::records_permutation(out, reference)) {
    return "output is not a permutation of the input";
  }
  // Group-size histograms must agree exactly.
  auto got = testing::key_counts(std::span<const record>(out), record_key{});
  auto want =
      testing::key_counts(std::span<const record>(reference), record_key{});
  if (got.size() != want.size()) return "distinct key count mismatch";
  for (auto& [k, cnt] : want) {
    if (got.at(k) != cnt) return "group size mismatch for a key";
  }
  return std::nullopt;
}

std::vector<diff_config> shrink(const diff_config& c) {
  std::vector<diff_config> out;
  auto with = [&](auto mutate) {
    diff_config d = c;
    mutate(d);
    out.push_back(d);
  };
  // Boldest first: drop the memory budget (proves the failure is not the
  // shard driver's), drop the schedule fuzzing (proves
  // schedule-independence), drop to one worker, then cut the input, then
  // reset knobs to defaults.
  if (c.memory_budget != 0) with([](diff_config& d) { d.memory_budget = 0; });
  if (c.sched_seed != 0) with([](diff_config& d) { d.sched_seed = 0; });
  if (c.workers != 1) with([](diff_config& d) { d.workers = 1; });
  for (uint64_t nn : proptest::shrink_toward(c.n, 1000)) {
    with([nn](diff_config& d) { d.n = nn; });
  }
  if (c.use_context) with([](diff_config& d) { d.use_context = false; });
  semisort_params dflt;
  if (c.params.probing != dflt.probing) {
    with([&](diff_config& d) { d.params.probing = dflt.probing; });
  }
  if (c.params.scatter_with != dflt.scatter_with) {
    with([&](diff_config& d) { d.params.scatter_with = dflt.scatter_with; });
  }
  if (c.params.local_sort != dflt.local_sort) {
    with([&](diff_config& d) { d.params.local_sort = dflt.local_sort; });
  }
  if (c.params.sample_sort_with != dflt.sample_sort_with) {
    with([&](diff_config& d) {
      d.params.sample_sort_with = dflt.sample_sort_with;
    });
  }
  if (c.params.merge_light_buckets != dflt.merge_light_buckets ||
      c.params.round_to_pow2 != dflt.round_to_pow2) {
    with([&](diff_config& d) {
      d.params.merge_light_buckets = dflt.merge_light_buckets;
      d.params.round_to_pow2 = dflt.round_to_pow2;
    });
  }
  if (c.params.sampling_p != dflt.sampling_p || c.params.delta != dflt.delta) {
    with([&](diff_config& d) {
      d.params.sampling_p = dflt.sampling_p;
      d.params.delta = dflt.delta;
    });
  }
  if (c.params.num_hash_ranges != dflt.num_hash_ranges ||
      c.params.light_bucket_samples != dflt.light_bucket_samples) {
    with([&](diff_config& d) {
      d.params.num_hash_ranges = dflt.num_hash_ranges;
      d.params.light_bucket_samples = dflt.light_bucket_samples;
    });
  }
  if (c.params.alpha != dflt.alpha || c.params.pack_intervals != dflt.pack_intervals) {
    with([&](diff_config& d) {
      d.params.alpha = dflt.alpha;
      d.params.pack_intervals = dflt.pack_intervals;
    });
  }
  for (uint64_t pp : proptest::shrink_toward(c.spec.parameter, 1)) {
    with([pp](diff_config& d) { d.spec.parameter = pp; });
  }
  return out;
}

TEST(Differential, RandomConfigurationsAgreeWithReference) {
  proptest::options opt;
  opt.trials = 30;
  opt.seed = 20260706;
  proptest::check<diff_config>(generate, hashed_agrees_with_reference, shrink,
                               describe, opt);
}

// ---- the hash-function-supplied general API against a plain sort ----

struct general_config {
  size_t n = 0;
  uint64_t vocab = 1;
  uint64_t data_seed = 0;
  uint64_t sched_seed = 0;
  int workers = 0;
};

std::optional<std::string> general_agrees_with_sort(const general_config& c) {
  proptest::scoped_workers w(c.workers);
  sched_fuzz::scoped_enable fuzz(c.sched_seed);
  rng r(c.data_seed);
  std::vector<uint64_t> values(c.n);
  for (auto& v : values) v = r.next_below(c.vocab);
  auto out = semisort(std::span<const uint64_t>(values),
                      [](uint64_t v) { return v; },
                      [](uint64_t v) { return hash64(v); });
  if (out.size() != c.n) return "output size mismatch";
  if (!testing::is_semisorted(std::span<const uint64_t>(out),
                              [](uint64_t v) { return v; })) {
    return "output not semisorted";
  }
  std::vector<uint64_t> sorted_out(out), sorted_in(values);
  std::sort(sorted_out.begin(), sorted_out.end());
  std::sort(sorted_in.begin(), sorted_in.end());
  if (sorted_out != sorted_in) return "output not a permutation of the input";
  return std::nullopt;
}

TEST(Differential, GeneralApiAgainstSortBaseline) {
  proptest::options opt;
  opt.trials = 12;
  opt.seed = 777;
  proptest::check<general_config>(
      [](rng& r) {
        general_config c;
        c.n = 500 + proptest::log_uniform_u64(r, 1, 40000);
        c.vocab = 1 + r.next_below(1 << 12);
        c.data_seed = r.next();
        c.sched_seed = sched_fuzz::kCompiledIn ? (r.next() | 1) : 0;
        c.workers = proptest::pick(r, {0, 1, 2, 4});
        return c;
      },
      general_agrees_with_sort,
      [](const general_config& c) {
        std::vector<general_config> out;
        if (c.sched_seed != 0) {
          general_config d = c;
          d.sched_seed = 0;
          out.push_back(d);
        }
        if (c.workers != 1) {
          general_config d = c;
          d.workers = 1;
          out.push_back(d);
        }
        for (uint64_t nn : proptest::shrink_toward(c.n, 500)) {
          general_config d = c;
          d.n = nn;
          out.push_back(d);
        }
        for (uint64_t vv : proptest::shrink_toward(c.vocab, 1)) {
          general_config d = c;
          d.vocab = vv;
          out.push_back(d);
        }
        return out;
      },
      [](const general_config& c) {
        std::ostringstream os;
        os << "n=" << c.n << " vocab=" << c.vocab
           << " data_seed=" << c.data_seed << " sched_seed=" << c.sched_seed
           << " workers=" << c.workers;
        return os.str();
      },
      opt);
}

}  // namespace
}  // namespace parsemi
