// Property-based sweeps: the semisort contract (permutation + contiguous
// groups) must hold for every distribution × size × parameter setting ×
// worker count combination, including deliberately hostile parameter
// values. These are the paper's Table 1 workloads shrunk to test scale.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "core/semisort.h"
#include "scheduler/scheduler.h"
#include "test_helpers.h"
#include "workloads/distributions.h"

namespace parsemi {
namespace {

using Combo = std::tuple<int /*dist index*/, size_t /*n*/, int /*workers*/>;

class SemisortSweep : public ::testing::TestWithParam<Combo> {
 protected:
  void TearDown() override { set_num_workers(saved_); }
  int saved_ = num_workers();
};

TEST_P(SemisortSweep, ContractHolds) {
  auto [dist_index, n, workers] = GetParam();
  auto spec = table1_distributions()[static_cast<size_t>(dist_index)];
  set_num_workers(workers);
  auto in = generate_records(n, spec, 1000 + static_cast<uint64_t>(dist_index));
  auto out = semisort_hashed(std::span<const record>(in));
  ASSERT_TRUE(testing::records_semisorted(out))
      << spec.name() << "(" << spec.parameter << ") n=" << n;
  ASSERT_TRUE(testing::records_permutation(out, in))
      << spec.name() << "(" << spec.parameter << ") n=" << n;
}

// All 17 paper distributions at a moderate size, sequential + parallel.
INSTANTIATE_TEST_SUITE_P(
    AllDistributions, SemisortSweep,
    ::testing::Combine(::testing::Range(0, 17), ::testing::Values(60000),
                       ::testing::Values(1, 4)));

// A few distributions across a size ladder (crossing the cutoff, the
// sample-size boundaries, and non-powers of two).
INSTANTIATE_TEST_SUITE_P(
    SizeLadder, SemisortSweep,
    ::testing::Combine(::testing::Values(0, 7, 16),
                       ::testing::Values(255, 256, 257, 1000, 4097, 30011,
                                         250000),
                       ::testing::Values(3)));

struct ParamCase {
  semisort_params params;
  const char* label;
};

class SemisortParams : public ::testing::TestWithParam<int> {};

std::vector<ParamCase> param_cases() {
  std::vector<ParamCase> cases;
  {
    semisort_params p;
    cases.push_back({p, "defaults"});
  }
  {
    semisort_params p;
    p.merge_light_buckets = false;
    cases.push_back({p, "no_merging"});
  }
  {
    semisort_params p;
    p.round_to_pow2 = false;
    cases.push_back({p, "no_pow2_rounding"});
  }
  {
    semisort_params p;
    p.probing = semisort_params::probe_strategy::random;
    cases.push_back({p, "random_probing"});
  }
  {
    semisort_params p;
    p.scatter_with = semisort_params::scatter_strategy::cas;
    cases.push_back({p, "scatter_cas"});
  }
  {
    semisort_params p;
    p.scatter_with = semisort_params::scatter_strategy::buffered;
    cases.push_back({p, "scatter_buffered"});
  }
  {
    semisort_params p;
    p.scatter_with = semisort_params::scatter_strategy::blocked;
    cases.push_back({p, "scatter_blocked"});
  }
  {
    semisort_params p;
    p.local_sort = semisort_params::local_sort_algo::counting_by_naming;
    cases.push_back({p, "counting_by_naming"});
  }
  {
    semisort_params p;
    p.sampling_p = 1.0 / 4.0;
    cases.push_back({p, "dense_sampling"});
  }
  {
    semisort_params p;
    p.sampling_p = 1.0 / 64.0;
    cases.push_back({p, "sparse_sampling"});
  }
  {
    semisort_params p;
    p.delta = 2;
    cases.push_back({p, "delta_2"});
  }
  {
    semisort_params p;
    p.delta = 256;
    cases.push_back({p, "delta_256"});
  }
  {
    semisort_params p;
    p.num_hash_ranges = 1 << 4;
    cases.push_back({p, "few_ranges"});
  }
  {
    semisort_params p;
    p.num_hash_ranges = 1 << 20;
    cases.push_back({p, "many_ranges"});
  }
  {
    semisort_params p;
    p.alpha = 1.01;  // minimal slack: provokes retries if estimator is tight
    cases.push_back({p, "alpha_tight"});
  }
  {
    semisort_params p;
    p.pack_intervals = 3;
    cases.push_back({p, "few_pack_intervals"});
  }
  {
    semisort_params p;
    p.pack_intervals = 100000;  // more intervals than slots
    cases.push_back({p, "many_pack_intervals"});
  }
  {
    semisort_params p;
    p.seed = 0;
    cases.push_back({p, "seed_zero"});
  }
  {
    semisort_params p;
    p.sample_sort_with = semisort_params::sample_sorter::merge_sort;
    cases.push_back({p, "sample_merge_sort"});
  }
  {
    semisort_params p;
    p.sample_sort_with = semisort_params::sample_sorter::std_sort;
    cases.push_back({p, "sample_std_sort"});
  }
  {
    semisort_params p;
    p.light_bucket_samples = 16;  // the paper's literal δ merge threshold
    cases.push_back({p, "merge_to_delta_only"});
  }
  {
    semisort_params p;
    p.light_bucket_samples = 1024;
    cases.push_back({p, "huge_light_buckets"});
  }
  return cases;
}

TEST_P(SemisortParams, ContractHoldsUnderEveryKnobSetting) {
  auto c = param_cases()[static_cast<size_t>(GetParam())];
  for (auto spec : {distribution_spec{distribution_kind::uniform, 1 << 30},
                    distribution_spec{distribution_kind::exponential, 300},
                    distribution_spec{distribution_kind::zipfian, 50000}}) {
    auto in = generate_records(80000, spec, 77);
    std::vector<record> out(in.size());
    semisort_hashed(std::span<const record>(in), std::span<record>(out),
                    record_key{}, c.params);
    ASSERT_TRUE(testing::valid_semisort(out, in))
        << c.label << " on " << spec.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Knobs, SemisortParams,
                         ::testing::Range(0, static_cast<int>(param_cases().size())));

TEST(SemisortProperty, GroupSizesMatchInputMultiplicities) {
  auto in = generate_records(150000, {distribution_kind::zipfian, 3000}, 5);
  auto out = semisort_hashed(std::span<const record>(in));
  auto expected = testing::key_counts(std::span<const record>(in), record_key{});
  size_t i = 0;
  while (i < out.size()) {
    uint64_t key = out[i].key;
    size_t run = 0;
    while (i < out.size() && out[i].key == key) {
      ++i;
      ++run;
    }
    ASSERT_EQ(run, expected.at(key)) << "key " << key;
  }
}

TEST(SemisortProperty, IdenticalResultsAtAnyWorkerCount) {
  // The output ordering is allowed to differ across worker counts (scatter
  // races change slot choices), but the *grouping* must stay valid and the
  // multiset equal. (Exact determinism across worker counts is NOT part of
  // the contract; this documents it.)
  auto in = generate_records(120000, {distribution_kind::exponential, 500}, 6);
  int saved = num_workers();
  set_num_workers(1);
  auto seq = semisort_hashed(std::span<const record>(in));
  set_num_workers(4);
  auto par = semisort_hashed(std::span<const record>(in));
  set_num_workers(saved);
  EXPECT_TRUE(testing::valid_semisort(seq, in));
  EXPECT_TRUE(testing::valid_semisort(par, in));
  EXPECT_TRUE(testing::records_permutation(par, seq));
}

TEST(SemisortProperty, RepeatedRunsDifferentSeedsAllValid) {
  auto in = generate_records(90000, {distribution_kind::zipfian, 200}, 7);
  for (uint64_t seed : {1ull, 2ull, 3ull, 999ull, ~0ull}) {
    semisort_params params;
    params.seed = seed;
    std::vector<record> out(in.size());
    semisort_hashed(std::span<const record>(in), std::span<record>(out),
                    record_key{}, params);
    ASSERT_TRUE(testing::valid_semisort(out, in)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace parsemi
