// Tests for the deterministic parallel random permutation / shuffle.
#include "primitives/random_shuffle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "scheduler/scheduler.h"

namespace parsemi {
namespace {

TEST(RandomPermutation, IsAPermutation) {
  for (size_t n : {0ul, 1ul, 2ul, 1000ul, 100000ul}) {
    auto perm = random_permutation(n, 7);
    ASSERT_EQ(perm.size(), n);
    std::vector<uint8_t> seen(n, 0);
    for (size_t x : perm) {
      ASSERT_LT(x, n);
      ASSERT_EQ(seen[x], 0);
      seen[x] = 1;
    }
  }
}

TEST(RandomPermutation, DeterministicPerSeed) {
  auto a = random_permutation(50000, 42);
  auto b = random_permutation(50000, 42);
  EXPECT_EQ(a, b);
  auto c = random_permutation(50000, 43);
  EXPECT_NE(a, c);
}

TEST(RandomPermutation, SameAtEveryWorkerCount) {
  int saved = num_workers();
  set_num_workers(1);
  auto seq = random_permutation(80000, 5);
  set_num_workers(4);
  auto par = random_permutation(80000, 5);
  set_num_workers(saved);
  EXPECT_EQ(seq, par);
}

TEST(RandomPermutation, LooksUniform) {
  // Mean displacement of a uniform permutation of [0,n) is ≈ n/3.
  constexpr size_t kN = 100000;
  auto perm = random_permutation(kN, 11);
  double total_displacement = 0;
  for (size_t i = 0; i < kN; ++i) {
    total_displacement += std::abs(static_cast<double>(perm[i]) -
                                   static_cast<double>(i));
  }
  double mean = total_displacement / kN;
  EXPECT_NEAR(mean, kN / 3.0, kN / 30.0);
  // No long identity prefix.
  size_t fixed = 0;
  for (size_t i = 0; i < kN; ++i) fixed += (perm[i] == i);
  EXPECT_LT(fixed, 20u);  // expected ≈ 1 fixed point
}

TEST(RandomShuffle, PreservesMultiset) {
  std::vector<int> v(60000);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  random_shuffle(std::span<int>(v), 99);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

}  // namespace
}  // namespace parsemi
