// Tests for shard/spill_file.h: data round-trips through the mapping, the
// backing temp file is unlinked immediately (nothing left behind by name),
// no file descriptors leak, and RAII unmaps on every path out of a scope —
// including exception unwinding.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>

#include "shard/spill_file.h"

namespace parsemi {
namespace {

// Number of open descriptors in this process, via /proc/self/fd.
size_t open_fd_count() {
  DIR* d = opendir("/proc/self/fd");
  if (d == nullptr) return 0;
  size_t n = 0;
  while (readdir(d) != nullptr) ++n;
  closedir(d);
  return n;  // includes ".", "..", and the dirfd itself — fine for deltas
}

// Number of directory entries (excluding . and ..) in `dir`.
size_t dir_entry_count(const std::string& dir) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return 0;
  size_t n = 0;
  while (dirent* e = readdir(d)) {
    std::string name = e->d_name;
    if (name != "." && name != "..") ++n;
  }
  closedir(d);
  return n;
}

// A scratch spill directory so the tests can observe "no file left by name"
// without interference from other /tmp traffic.
class SpillFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/parsemi-spill-test-XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    setenv("PARSEMI_SPILL_DIR", dir_.c_str(), 1);
  }
  void TearDown() override {
    unsetenv("PARSEMI_SPILL_DIR");
    rmdir(dir_.c_str());  // fails (harmlessly) if a test leaked a file
  }
  std::string dir_;
};

TEST_F(SpillFileTest, DataRoundTrips) {
  spill_file f(1 << 20);
  ASSERT_TRUE(f.valid());
  EXPECT_EQ(f.size(), 1u << 20);
  auto words = f.as_span<uint64_t>();
  ASSERT_EQ(words.size(), (1u << 20) / sizeof(uint64_t));
  std::iota(words.begin(), words.end(), uint64_t{7});
  for (size_t i = 0; i < words.size(); i += 997) {
    ASSERT_EQ(words[i], 7 + i) << i;
  }
}

TEST_F(SpillFileTest, FileIsUnlinkedWhileAlive) {
  spill_file f(1 << 16);
  ASSERT_TRUE(f.valid());
  // The backing file was unlinked at creation: the spill dir holds no entry
  // even while the mapping is live, so a crash cannot strand disk space.
  EXPECT_EQ(dir_entry_count(dir_), 0u);
}

TEST_F(SpillFileTest, NoDescriptorLeak) {
  size_t before = open_fd_count();
  {
    spill_file f(1 << 16);
    ASSERT_TRUE(f.valid());
    // The creation fd is closed once the mapping holds the inode.
    EXPECT_EQ(open_fd_count(), before);
  }
  EXPECT_EQ(open_fd_count(), before);
}

TEST_F(SpillFileTest, CleansUpOnExceptionPath) {
  size_t before = open_fd_count();
  try {
    spill_file f(1 << 16);
    ASSERT_TRUE(f.valid());
    f.as_span<uint32_t>()[0] = 42;
    throw std::runtime_error("unwind");
  } catch (const std::runtime_error&) {
  }
  // Unwinding destroyed the mapping and nothing remains by fd or by name.
  EXPECT_EQ(open_fd_count(), before);
  EXPECT_EQ(dir_entry_count(dir_), 0u);
}

TEST_F(SpillFileTest, ConstructorFailureThrowsAndLeaksNothing) {
  setenv("PARSEMI_SPILL_DIR", "/nonexistent-parsemi-dir", 1);
  size_t before = open_fd_count();
  EXPECT_THROW(spill_file(1 << 16), std::runtime_error);
  EXPECT_EQ(open_fd_count(), before);
}

TEST_F(SpillFileTest, MoveTransfersOwnership) {
  spill_file a(1 << 16);
  std::byte* p = a.data();
  spill_file b(std::move(a));
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b.size(), 1u << 16);

  spill_file c(1 << 12);
  c = std::move(b);  // move-assign over a live mapping unmaps the old one
  EXPECT_EQ(c.data(), p);
  EXPECT_EQ(c.size(), 1u << 16);
  EXPECT_FALSE(b.valid());
}

TEST_F(SpillFileTest, ResetReleasesEarly) {
  spill_file f(1 << 16);
  ASSERT_TRUE(f.valid());
  f.reset();
  EXPECT_FALSE(f.valid());
  EXPECT_EQ(f.size(), 0u);
  f.reset();  // idempotent
}

TEST_F(SpillFileTest, ZeroSizeIsEmptyAndSafe) {
  spill_file f(0);
  EXPECT_FALSE(f.valid());
  EXPECT_EQ(f.size(), 0u);
  EXPECT_EQ(dir_entry_count(dir_), 0u);  // no file was created at all
  f.advise_willneed(0, 100);             // hints are no-ops when empty
  f.advise_dontneed(0, 100);
  f.advise_sequential();
}

TEST_F(SpillFileTest, AdviseClampsOutOfRange) {
  spill_file f(1 << 16);
  // Out-of-range and overlapping hints must not fault or corrupt data.
  f.as_span<uint64_t>()[0] = 99;
  f.advise_willneed(1 << 20, 100);       // offset past the end: no-op
  f.advise_dontneed(100, 1 << 30);       // length clamped to the mapping
  f.advise_willneed(4095, 2);            // unaligned offset: aligned down
  EXPECT_EQ(f.as_span<uint64_t>()[0], 99u);
}

TEST_F(SpillFileTest, FallsBackToTmpWhenUnset) {
  unsetenv("PARSEMI_SPILL_DIR");
  unsetenv("TMPDIR");
  spill_file f(1 << 12);
  EXPECT_TRUE(f.valid());
}

}  // namespace
}  // namespace parsemi
