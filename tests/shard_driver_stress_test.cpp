// Stress for the out-of-core shard driver: budgets swept from "everything
// spills in tiny shards" to "one shard" across all 17 Table-1 distributions
// (downscaled), copy / in-place / vector entry points, worker counts, and
// perturbed schedules. The property is equivalence with the unsharded
// pipeline: same multiset, groups contiguous, same group-size histogram.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/semisort.h"
#include "proptest.h"
#include "scheduler/sched_fuzz.h"
#include "test_helpers.h"
#include "workloads/distributions.h"

namespace parsemi {
namespace {

struct shard_config {
  size_t n = 10000;
  size_t dist = 0;       // index into table1_distributions()
  int budget_step = 0;   // 0 = footprint/64 (max sharding) … 6 = ×budget ≥ fit
  int entry = 0;         // 0 = copy, 1 = in-place, 2 = vector overload
  int workers = 0;
  uint64_t fuzz_seed = 0;
  uint64_t data_seed = 1;
};

// Budget ladder: footprint >> budget at step 0 (every shard spills), budget
// past the footprint at the top step (the driver must decline to shard).
size_t budget_for(const shard_config& c) {
  size_t footprint =
      scratch_model{}.footprint_bytes(c.n, sizeof(record));
  size_t divisor = size_t{64} >> std::min(c.budget_step, 6);  // 64 … 1
  return divisor == 1 ? footprint * 2 : footprint / divisor;
}

shard_config generate(rng& r) {
  shard_config c;
  c.n = proptest::log_uniform_u64(r, 2000, 120000);
  c.dist = r.next_below(table1_distributions().size());
  c.budget_step = static_cast<int>(r.next_below(7));
  c.entry = static_cast<int>(r.next_below(3));
  c.workers = static_cast<int>(proptest::pick(r, {0, 0, 1, 2, 4}));
  c.fuzz_seed =
      sched_fuzz::kCompiledIn && proptest::chance(r, 0.4) ? r.next() | 1 : 0;
  c.data_seed = r.next();
  return c;
}

std::string describe(const shard_config& c) {
  auto spec = scaled_to(table1_distributions()[c.dist], c.n);
  std::ostringstream os;
  os << spec.name() << "(" << spec.parameter << ") n=" << c.n
     << " budget_step=" << c.budget_step << " budget=" << budget_for(c)
     << " entry=" << c.entry << " workers=" << c.workers
     << " fuzz=" << c.fuzz_seed << " data=" << c.data_seed;
  return os.str();
}

std::vector<shard_config> shrink(const shard_config& c) {
  std::vector<shard_config> out;
  auto with = [&](auto mutate) {
    shard_config d = c;
    mutate(d);
    out.push_back(d);
  };
  if (c.fuzz_seed != 0) with([](shard_config& d) { d.fuzz_seed = 0; });
  if (c.workers != 1) with([](shard_config& d) { d.workers = 1; });
  if (c.entry != 0) with([](shard_config& d) { d.entry = 0; });
  for (uint64_t nn : proptest::shrink_toward(c.n, 2000)) {
    with([nn](shard_config& d) { d.n = nn; });
  }
  // Toward the ends of the ladder: a mid-ladder failure usually simplifies
  // to either max sharding or the no-shard boundary.
  if (c.budget_step != 0) with([](shard_config& d) { d.budget_step = 0; });
  if (c.dist != 0) with([](shard_config& d) { d.dist = 0; });
  return out;
}

std::optional<std::string> sharded_equals_unsharded(const shard_config& c) {
  proptest::scoped_workers w(c.workers);
  sched_fuzz::scoped_enable fuzz(c.fuzz_seed);
  auto spec = scaled_to(table1_distributions()[c.dist], c.n);
  auto in = generate_records(c.n, spec, c.data_seed);

  semisort_params params;
  semisort_stats stats;
  params.stats = &stats;
  params.memory_budget_bytes = budget_for(c);

  std::vector<record> got;
  switch (c.entry) {
    case 0: {
      got.resize(in.size());
      semisort_hashed(std::span<const record>(in), std::span<record>(got),
                      record_key{}, params);
      break;
    }
    case 1: {
      got = in;
      semisort_hashed_inplace(std::span<record>(got), record_key{}, params);
      break;
    }
    default:
      got = semisort_hashed(std::span<const record>(in), record_key{}, params);
      break;
  }

  if (stats.shards == 0) return "stats.shards never set";
  if (c.budget_step == 6 && stats.shards != 1) {
    return "budget above footprint still sharded";
  }
  if (!testing::records_semisorted(got)) return "output not semisorted";
  if (!testing::records_permutation(got, in)) {
    return "output is not a permutation of the input";
  }

  // Same group-size histogram as the unsharded run of the same input.
  semisort_params unsharded;
  unsharded.memory_budget_bytes = SIZE_MAX;
  auto want_out =
      semisort_hashed(std::span<const record>(in), record_key{}, unsharded);
  auto gotc = testing::key_counts(std::span<const record>(got), record_key{});
  auto wantc =
      testing::key_counts(std::span<const record>(want_out), record_key{});
  if (gotc.size() != wantc.size()) return "distinct key count mismatch";
  for (auto& [k, cnt] : wantc) {
    auto it = gotc.find(k);
    if (it == gotc.end() || it->second != cnt) {
      return "group size mismatch vs unsharded";
    }
  }
  // Spill accounting: the in-place and vector entries must spill whenever
  // the driver actually sharded; the copy entry never spills.
  if (stats.shards > 1) {
    bool expect_spill = c.entry != 0;
    if (expect_spill && stats.spilled_bytes != in.size() * sizeof(record)) {
      return "in-place sharded run did not account its spill";
    }
    if (!expect_spill && stats.spilled_bytes != 0) {
      return "copy run spilled but had free output storage";
    }
  }
  return std::nullopt;
}

TEST(ShardDriverStress, BudgetLadderAcrossAllDistributions) {
  proptest::options opt;
  opt.trials = 40;
  opt.seed = 0x5AA05AA0ULL;
  proptest::check<shard_config>(generate, sharded_equals_unsharded, shrink,
                                describe, opt);
}

// Every Table-1 distribution, pinned tiny budget: a deterministic sweep so
// a distribution-specific regression names itself without proptest search.
TEST(ShardDriverStress, EveryTable1DistributionUnderTinyBudget) {
  auto dists = table1_distributions();
  for (size_t d = 0; d < dists.size(); ++d) {
    shard_config c;
    c.n = 40000;
    c.dist = d;
    c.budget_step = 1;  // footprint / 32
    c.entry = static_cast<int>(d % 3);
    c.data_seed = 0xD15 + d;
    auto failure = sharded_equals_unsharded(c);
    EXPECT_FALSE(failure.has_value()) << describe(c) << ": " << *failure;
  }
}

// Overlapped spill I/O under perturbed schedules: with the overlap strategy
// forced on, the in-place entry (every shard round-trips through the spill
// files) must stay equivalent to the unsharded run while the driver
// prefetches shard k+1 on the I/O pool during shard k's compute. The
// telemetry pins the overlap down: the plan records the decision and at
// least one prefetch actually ran (bounded by shards − 1 — the first
// shard's read is always synchronous).
TEST(ShardDriverStress, OverlappedSpillUnderSchedFuzz) {
  const uint64_t kFuzzSeeds[] = {0, 0xF00D1ULL, 0xBEEF3ULL, 0x97531ULL};
  for (uint64_t fs : kFuzzSeeds) {
    if (fs != 0 && !sched_fuzz::kCompiledIn) continue;
    sched_fuzz::scoped_enable fuzz(fs);

    size_t n = 60000;
    auto spec = scaled_to(table1_distributions()[0], n);
    auto in = generate_records(n, spec, 0xA11CE + fs);

    semisort_params params;
    semisort_stats stats;
    params.stats = &stats;
    params.shard_overlap = semisort_params::overlap_strategy::on;
    params.memory_budget_bytes =
        scratch_model{}.footprint_bytes(n, sizeof(record)) / 32;

    std::vector<record> got = in;
    semisort_hashed_inplace(std::span<record>(got), record_key{}, params);

    ASSERT_GE(stats.shards, 2u) << "fuzz=" << fs << ": tiny budget must shard";
    EXPECT_TRUE(stats.plan.overlap_io) << "fuzz=" << fs;
    EXPECT_GE(stats.overlapped_prefetches, 1u) << "fuzz=" << fs;
    EXPECT_LE(stats.overlapped_prefetches, stats.shards - 1) << "fuzz=" << fs;
    EXPECT_EQ(stats.spilled_bytes, n * sizeof(record)) << "fuzz=" << fs;
    EXPECT_TRUE(testing::records_semisorted(got)) << "fuzz=" << fs;
    EXPECT_TRUE(testing::records_permutation(got, in)) << "fuzz=" << fs;
  }
}

}  // namespace
}  // namespace parsemi
