// Tests for the deterministic schedule-fuzzing subsystem: seeded traces are
// bit-reproducible, different seeds perturb differently, results stay
// correct under perturbation, and worker churn is deterministic and bounded.
#include "scheduler/sched_fuzz.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "core/semisort.h"
#include "proptest.h"
#include "scheduler/scheduler.h"
#include "test_helpers.h"
#include "workloads/distributions.h"

namespace parsemi {
namespace {

// A fixed workload that exercises fork/join, parallel_for granularity
// splitting, and nesting. Returns a value so perturbed runs can also be
// checked for correctness.
uint64_t workload() {
  std::atomic<uint64_t> acc{0};
  parallel_for(0, 50000, [&](size_t i) {
    acc.fetch_add(splitmix64(i), std::memory_order_relaxed);
  });
  par_do(
      [&] {
        parallel_for(
            0, 20000,
            [&](size_t i) { acc.fetch_add(i, std::memory_order_relaxed); },
            64);
      },
      [&] {
        parallel_for(
            0, 20000,
            [&](size_t i) { acc.fetch_add(2 * i, std::memory_order_relaxed); },
            64);
      });
  return acc.load(std::memory_order_relaxed);
}

TEST(SchedFuzz, DisabledMeansNoPerturbationAndZeroTrace) {
  sched_fuzz::disable();
  uint64_t before = sched_fuzz::perturbation_count();
  uint64_t expect = workload();
  EXPECT_EQ(sched_fuzz::perturbation_count(), before);
  EXPECT_EQ(workload(), expect);
}

TEST(SchedFuzz, SeededTraceIsBitReproducible) {
  if constexpr (!sched_fuzz::kCompiledIn) {
    GTEST_SKIP() << "built with PARSEMI_SCHED_FUZZ=OFF";
  }
  proptest::scoped_workers w(4);
  for (uint64_t seed : {123ull, 987654321ull, 0xdeadbeefull}) {
    sched_fuzz::enable(seed);
    uint64_t r1 = workload();
    uint64_t d1 = sched_fuzz::trace_digest();

    sched_fuzz::enable(seed);  // replay: full reset, same seed
    uint64_t r2 = workload();
    uint64_t d2 = sched_fuzz::trace_digest();
    sched_fuzz::disable();

    EXPECT_EQ(r1, r2) << "seed " << seed;
    EXPECT_EQ(d1, d2) << "seed " << seed << ": perturbation trace diverged";
    EXPECT_NE(d1, 0u) << "seed " << seed << ": no perturbations fired";
  }
}

TEST(SchedFuzz, DifferentSeedsProduceDifferentTraces) {
  if constexpr (!sched_fuzz::kCompiledIn) {
    GTEST_SKIP() << "built with PARSEMI_SCHED_FUZZ=OFF";
  }
  proptest::scoped_workers w(4);
  sched_fuzz::enable(1);
  workload();
  uint64_t d1 = sched_fuzz::trace_digest();
  sched_fuzz::enable(2);
  workload();
  uint64_t d2 = sched_fuzz::trace_digest();
  sched_fuzz::disable();
  EXPECT_NE(d1, d2);
}

TEST(SchedFuzz, SchedulerResultsCorrectUnderPerturbation) {
  proptest::scoped_workers w(4);
  uint64_t expect;
  {
    sched_fuzz::disable();
    expect = workload();
  }
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    sched_fuzz::scoped_enable fuzz(sched_fuzz::kCompiledIn ? seed : 0);
    EXPECT_EQ(workload(), expect) << "seed " << seed;
  }
}

TEST(SchedFuzz, SemisortValidUnderPerturbedSchedules) {
  proptest::scoped_workers w(4);
  auto in = generate_records(60000, {distribution_kind::zipfian, 2000}, 11);
  for (uint64_t seed : {5ull, 6ull, 7ull}) {
    sched_fuzz::scoped_enable fuzz(sched_fuzz::kCompiledIn ? seed : 0);
    std::vector<record> out(in.size());
    semisort_hashed(std::span<const record>(in), std::span<record>(out),
                    record_key{}, {});
    ASSERT_TRUE(testing::valid_semisort(out, in)) << "seed " << seed;
  }
}

TEST(SchedFuzz, ExceptionsStillPropagateUnderPerturbation) {
  proptest::scoped_workers w(4);
  sched_fuzz::scoped_enable fuzz(sched_fuzz::kCompiledIn ? 31337 : 0);
  EXPECT_THROW(
      {
        parallel_for(0, 10000, [&](size_t i) {
          if (i == 7777) throw std::runtime_error("boom");
        });
      },
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int64_t> sum{0};
  parallel_for(0, 1000, [&](size_t i) { sum.fetch_add(static_cast<int64_t>(i), std::memory_order_relaxed); });
  EXPECT_EQ(sum.load(std::memory_order_relaxed), 999 * 1000 / 2);
}

TEST(SchedFuzz, WorkerChurnIsDeterministicAndBounded) {
  if constexpr (!sched_fuzz::kCompiledIn) {
    GTEST_SKIP() << "built with PARSEMI_SCHED_FUZZ=OFF";
  }
  int original = num_workers();
  auto churn_sequence = [] {
    set_num_workers(2);  // fixed baseline: counts before the first fired
                         // churn must match across runs too
    std::vector<int> counts;
    for (int i = 0; i < 40; ++i) {
      sched_fuzz::maybe_churn_workers(4);
      counts.push_back(num_workers());
    }
    return counts;
  };
  sched_fuzz::enable(77);
  auto a = churn_sequence();
  sched_fuzz::enable(77);
  auto b = churn_sequence();
  sched_fuzz::disable();
  set_num_workers(original);

  EXPECT_EQ(a, b) << "churn sequence not reproducible";
  bool churned = false;
  for (int c : a) {
    EXPECT_GE(c, 1);
    EXPECT_LE(c, 4);
    if (c != original) churned = true;
  }
  EXPECT_TRUE(churned) << "seed 77 never changed the worker count in 40 calls";
  // The pool still works after churn.
  std::atomic<int64_t> sum{0};
  parallel_for(0, 10000, [&](size_t i) { sum.fetch_add(static_cast<int64_t>(i), std::memory_order_relaxed); });
  EXPECT_EQ(sum.load(std::memory_order_relaxed), int64_t(9999) * 10000 / 2);
}

TEST(SchedFuzz, ScopedEnableRestoresPreviousState) {
  if constexpr (!sched_fuzz::kCompiledIn) {
    GTEST_SKIP() << "built with PARSEMI_SCHED_FUZZ=OFF";
  }
  sched_fuzz::disable();
  {
    sched_fuzz::scoped_enable fuzz(42);
    EXPECT_TRUE(sched_fuzz::enabled());
    EXPECT_EQ(sched_fuzz::seed(), 42u);
  }
  EXPECT_FALSE(sched_fuzz::enabled());

  sched_fuzz::enable(7);
  {
    sched_fuzz::scoped_enable fuzz(42);
    EXPECT_EQ(sched_fuzz::seed(), 42u);
  }
  EXPECT_TRUE(sched_fuzz::enabled());
  EXPECT_EQ(sched_fuzz::seed(), 7u);
  sched_fuzz::disable();
}

}  // namespace
}  // namespace parsemi
