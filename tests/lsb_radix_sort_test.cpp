// Tests for the buffered LSB radix sort (§5.5's optimized-radix stand-in).
#include "sort/lsb_radix_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "hashing/hash64.h"
#include "util/rng.h"
#include "workloads/record.h"

namespace parsemi {
namespace {

class LsbRadixSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(LsbRadixSizes, SortsUniform) {
  size_t n = GetParam();
  std::vector<uint64_t> v(n);
  rng r(n + 31);
  for (auto& x : v) x = r.next();
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  lsb_radix_sort_u64(std::span<uint64_t>(v));
  EXPECT_EQ(v, expected);
}

TEST_P(LsbRadixSizes, SortsSkewed) {
  // The degenerate case the paper calls out for partitioned radix sorts:
  // nearly all keys equal. Must stay correct (if slower).
  size_t n = GetParam();
  std::vector<uint64_t> v(n);
  rng r(n + 32);
  for (auto& x : v) x = r.next_below(50) == 0 ? r.next() : 0xabcdULL;
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  lsb_radix_sort_u64(std::span<uint64_t>(v));
  EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(AcrossSizes, LsbRadixSizes,
                         ::testing::Values(0, 1, 2, 1000, 8192, 8193, 100000,
                                           1 << 20));

TEST(LsbRadixSort, StableWithinEqualKeys) {
  struct keyed {
    uint64_t key;
    uint32_t tag;
  };
  std::vector<keyed> v(200000);
  rng r(33);
  for (size_t i = 0; i < v.size(); ++i)
    v[i] = {r.next_below(64), static_cast<uint32_t>(i)};
  lsb_radix_sort(std::span<keyed>(v), [](const keyed& k) { return k.key; },
                 63);
  for (size_t i = 1; i < v.size(); ++i) {
    ASSERT_LE(v[i - 1].key, v[i].key);
    if (v[i - 1].key == v[i].key) {
      ASSERT_LT(v[i - 1].tag, v[i].tag) << i;
    }
  }
}

TEST(LsbRadixSort, MaxKeyLimitsPassesWithoutChangingResult) {
  std::vector<uint64_t> v(300000);
  rng r(34);
  for (auto& x : v) x = r.next_below(1 << 20);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  lsb_radix_sort_u64(std::span<uint64_t>(v), (1 << 20) - 1);
  EXPECT_EQ(v, expected);
}

TEST(LsbRadixSort, OddNumberOfPassesCopiesBack) {
  // 24-bit keys → 3 passes → result ends in the temp buffer and must be
  // copied back into the caller's span.
  std::vector<uint64_t> v(100000);
  rng r(35);
  for (auto& x : v) x = r.next_below(1ull << 24);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  lsb_radix_sort_u64(std::span<uint64_t>(v), (1ull << 24) - 1);
  EXPECT_EQ(v, expected);
}

TEST(LsbRadixSort, RecordsFullWidthKeys) {
  std::vector<record> v(150000);
  rng r(36);
  for (size_t i = 0; i < v.size(); ++i)
    v[i] = {hash64(r.next_below(3000)), static_cast<uint64_t>(i)};
  uint64_t payload_xor = 0;
  for (auto& rec : v) payload_xor ^= rec.payload;
  lsb_radix_sort(std::span<record>(v), record_key{});
  uint64_t payload_xor_after = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) {
      ASSERT_LE(v[i - 1].key, v[i].key);
    }
    payload_xor_after ^= v[i].payload;
  }
  EXPECT_EQ(payload_xor, payload_xor_after);
}

}  // namespace
}  // namespace parsemi
