// Quickstart: semisort 10 million key-value records and inspect the groups.
//
//   ./quickstart [--n 10000000] [--threads K]
//
// Demonstrates the three entry points most users need:
//   1. semisort_hashed  — pre-hashed 64-bit keys (fastest path)
//   2. group_by_hashed  — same, plus group boundaries
//   3. semisort         — arbitrary keys (hashing + collision check inside)
#include <cstdio>
#include <string>
#include <vector>

#include "core/group_by.h"
#include "core/semisort.h"
#include "scheduler/scheduler.h"
#include "util/env.h"
#include "util/timer.h"
#include "workloads/distributions.h"

int main(int argc, char** argv) {
  using namespace parsemi;
  arg_parser args(argc, argv);
  size_t n = static_cast<size_t>(args.get_int("n", 10000000));
  if (args.has("threads")) set_num_workers(static_cast<int>(args.get_int("threads", 1)));

  std::printf("parsemi quickstart: n = %zu records, %d worker(s)\n\n", n,
              num_workers());

  // 1. Pre-hashed records (exponential duplicate structure, mean 1000).
  auto records =
      generate_records(n, {distribution_kind::exponential, 1000}, /*seed=*/1);

  timer t;
  auto out = semisort_hashed(std::span<const record>(records));
  double semisort_time = t.elapsed();
  std::printf("semisort_hashed:  %.3fs  (%.1f Mrecords/s)\n", semisort_time,
              static_cast<double>(n) / semisort_time / 1e6);

  // Verify the contract on a prefix: equal keys contiguous.
  size_t groups_in_prefix = 0;
  for (size_t i = 0; i < std::min<size_t>(out.size(), 1000); ++i)
    if (i == 0 || out[i].key != out[i - 1].key) ++groups_in_prefix;
  std::printf("  first 1000 output records span %zu key groups\n\n",
              groups_in_prefix);

  // 2. Group boundaries.
  t.reset();
  auto grouped = group_by_hashed(std::span<const record>(records));
  std::printf("group_by_hashed:  %.3fs, %zu distinct keys\n", t.elapsed(),
              grouped.num_groups());
  size_t largest = 0, largest_group = 0;
  for (size_t g = 0; g < grouped.num_groups(); ++g)
    if (grouped.group(g).size() > largest) {
      largest = grouped.group(g).size();
      largest_group = g;
    }
  std::printf("  largest group: key %016llx with %zu records\n\n",
              static_cast<unsigned long long>(
                  grouped.group(largest_group).front().key),
              largest);

  // 3. Arbitrary keys: group strings by value.
  std::vector<std::string> tags;
  tags.reserve(100000);
  const char* kinds[] = {"error", "warning", "info", "debug", "trace"};
  for (size_t i = 0; i < 100000; ++i) tags.push_back(kinds[i % 5]);
  auto grouped_tags = semisort(
      std::span<const std::string>(tags),
      [](const std::string& s) -> const std::string& { return s; },
      [](const std::string& s) { return hash_string(s); });
  std::printf("semisort (string keys): %zu tags grouped; first = \"%s\"\n",
              grouped_tags.size(), grouped_tags.front().c_str());
  return 0;
}
