// Deduplication (distinct / remove-duplicates) via semisort — the
// "collecting equal values" use-case from the paper's abstract, phrased as
// the everyday data-engineering primitive: keep one representative per key.
//
//   ./dedup [--n 8000000] [--distinct 1000000] [--threads K]
//
// Compares the semisort route (group, take each group's head) against a
// sequential std::unordered_set pass, validating the result and timing
// both.
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "core/group_by.h"
#include "scheduler/scheduler.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workloads/distributions.h"

int main(int argc, char** argv) {
  using namespace parsemi;
  arg_parser args(argc, argv);
  size_t n = static_cast<size_t>(args.get_int("n", 8000000));
  uint64_t distinct = static_cast<uint64_t>(args.get_int("distinct", 1000000));
  if (args.has("threads")) set_num_workers(static_cast<int>(args.get_int("threads", 1)));

  auto records =
      generate_records(n, {distribution_kind::zipfian, distinct}, /*seed=*/7);

  // --- semisort route: group by key, keep each group's first record ---
  timer t;
  auto g = group_by_hashed(std::span<const record>(records));
  std::vector<record> unique(g.num_groups());
  parallel_for(0, g.num_groups(),
               [&](size_t grp) { unique[grp] = g.group(grp).front(); });
  double semisort_time = t.lap();

  // --- reference: sequential hash-set scan ---
  std::unordered_set<uint64_t> seen;
  seen.reserve(n);
  std::vector<record> reference;
  for (const auto& r : records)
    if (seen.insert(r.key).second) reference.push_back(r);
  double set_time = t.lap();

  bool sizes_match = unique.size() == reference.size();
  std::printf("dedup: %zu records → %zu distinct keys, %d worker(s)\n", n,
              unique.size(), num_workers());
  std::printf("  semisort route:  %.3fs (%.1f Mrec/s)\n", semisort_time,
              static_cast<double>(n) / semisort_time / 1e6);
  std::printf("  hash-set route:  %.3fs (%.1f Mrec/s, sequential)\n", set_time,
              static_cast<double>(n) / set_time / 1e6);
  std::printf("  results agree on count: %s\n", sizes_match ? "yes" : "NO");
  return sizes_match ? 0 : 1;
}
