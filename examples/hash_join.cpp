// Database equi-join via semisort (§1 of the paper: "in the relational join
// operation ... equal values of a field of a relation have to be put
// together with equal values of a field of another").
//
//   ./hash_join [--left 4000000] [--right 4000000] [--matches 200000]
//
// Uses the library's relational layer: parsemi::equi_join concatenates the
// relations with a side tag, semisorts on the join key, and emits each
// group's left×right cross product with exact output sizing — the
// semisort-based join strategy from the main-memory join literature the
// paper cites.
#include <cstdio>
#include <vector>

#include "core/relational.h"
#include "scheduler/scheduler.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workloads/record.h"

int main(int argc, char** argv) {
  using namespace parsemi;
  arg_parser args(argc, argv);
  size_t left_n = static_cast<size_t>(args.get_int("left", 4000000));
  size_t right_n = static_cast<size_t>(args.get_int("right", 4000000));
  size_t match_keys = static_cast<size_t>(args.get_int("matches", 200000));
  if (args.has("threads")) set_num_workers(static_cast<int>(args.get_int("threads", 1)));

  // Left rows draw keys from [match_keys], right rows from [2·match_keys]:
  // about half the right rows have join partners.
  std::vector<record> left(left_n), right(right_n);
  rng base(31415);
  parallel_for(0, left_n, [&](size_t i) {
    left[i] = {hash64(base.split(i).next_below(match_keys)), i};
  });
  parallel_for(0, right_n, [&](size_t i) {
    right[i] = {hash64(base.split(left_n + i).next_below(2 * match_keys)), i};
  });

  timer t;
  auto joined = equi_join(
      std::span<const record>(left), std::span<const record>(right),
      record_key{}, [](const record& r) { return r.payload; }, record_key{},
      [](const record& r) { return r.payload; });
  double join_time = t.elapsed();

  std::printf("semisort join: |L|=%zu |R|=%zu, %d worker(s)\n", left_n,
              right_n, num_workers());
  std::printf("  join: %.3fs (%zu output tuples, %.1f Minput rows/s)\n",
              join_time, joined.size(),
              static_cast<double>(left_n + right_n) / join_time / 1e6);

  // Aggregate over the join result: total matches per hot key bucket.
  t.reset();
  auto per_key = group_aggregate(
      std::span<const join_row>(joined),
      [](const join_row& r) { return r.key; },
      [](const join_row&) { return uint64_t{1}; }, uint64_t{0},
      [](uint64_t acc, uint64_t v) { return acc + v; });
  std::printf("  group-aggregate over result: %.3fs (%zu keys with matches)\n",
              t.elapsed(), per_key.size());
  return joined.empty() ? 1 : 0;
}
