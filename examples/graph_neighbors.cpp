// Building a graph adjacency structure from an edge list with semisort
// (§1 of the paper: collecting "values associated with vertices in a
// graph"; the cited use in parallel graph coloring / divide-and-conquer).
//
//   ./graph_neighbors [--vertices 1000000] [--edges 8000000]
//
// Edges arrive as an unordered (source, target) stream with power-law
// degrees. Grouping by source with the semisort yields CSR-style adjacency
// in two linear passes — no per-vertex locks, no atomic counters.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/group_by.h"
#include "scheduler/scheduler.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workloads/distributions.h"

int main(int argc, char** argv) {
  using namespace parsemi;
  arg_parser args(argc, argv);
  uint64_t vertices = static_cast<uint64_t>(args.get_int("vertices", 1000000));
  size_t edges_n = static_cast<size_t>(args.get_int("edges", 8000000));
  if (args.has("threads")) set_num_workers(static_cast<int>(args.get_int("threads", 1)));

  // Power-law sources (Zipf over vertex ids), uniform targets.
  std::vector<record> edges(edges_n);
  rng base(8128);
  distribution_spec src_dist{distribution_kind::zipfian, vertices};
  parallel_for(0, edges_n, [&](size_t i) {
    uint64_t src = draw_underlying_key(src_dist, base, i);
    edges[i] = {hash64(src), base.split(i).next_below(vertices)};
  });

  timer t;
  auto g = group_by_hashed(std::span<const record>(edges));
  double group_time = t.lap();

  // Degree statistics straight off the groups.
  size_t max_degree = 0;
  double sum_degree = 0;
  for (size_t grp = 0; grp < g.num_groups(); ++grp) {
    max_degree = std::max(max_degree, g.group(grp).size());
    sum_degree += static_cast<double>(g.group(grp).size());
  }

  // A toy analytic pass over the adjacency: per-vertex neighbor dedup count
  // (runs per group in parallel — each group is already contiguous).
  std::vector<size_t> distinct_neighbors(g.num_groups());
  parallel_for(
      0, g.num_groups(),
      [&](size_t grp) {
        auto span = g.group(grp);
        std::vector<uint64_t> nbrs;
        nbrs.reserve(span.size());
        for (auto& e : span) nbrs.push_back(e.payload);
        std::sort(nbrs.begin(), nbrs.end());
        distinct_neighbors[grp] = static_cast<size_t>(
            std::unique(nbrs.begin(), nbrs.end()) - nbrs.begin());
      },
      1);
  double analyze_time = t.lap();

  size_t total_distinct = 0;
  for (size_t d : distinct_neighbors) total_distinct += d;

  std::printf("graph adjacency build: %zu edges over ≤%llu vertices, %d worker(s)\n",
              edges_n, static_cast<unsigned long long>(vertices), num_workers());
  std::printf("  group edges by source: %.3fs (%.1f Medges/s)\n", group_time,
              static_cast<double>(edges_n) / group_time / 1e6);
  std::printf("  vertices with edges: %zu, max degree %zu, avg degree %.2f\n",
              g.num_groups(), max_degree, sum_degree / static_cast<double>(g.num_groups()));
  std::printf("  multi-edge dedup pass: %.3fs (%zu distinct directed edges)\n",
              analyze_time, total_distinct);
  return 0;
}
