// MapReduce-style word count: the semisort as the shuffle step (§1 of the
// paper: "the most expensive step [of MapReduce] is typically the so-called
// shuffle step").
//
//   ./wordcount_shuffle [--docs 2000] [--threads K]
//
// map:      every document emits (word, 1) pairs
// shuffle:  collect_reduce semisorts the pairs so equal words are contiguous
// reduce:   per-group sum (fused into collect_reduce)
//
// The result is compared against a sequential std::unordered_map count.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/collect_reduce.h"
#include "scheduler/scheduler.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

// A synthetic corpus with Zipf-ish word frequencies (as real text has).
std::vector<std::string> make_vocabulary() {
  std::vector<std::string> vocab = {
      "the",  "of",   "and",  "to",   "in",   "a",     "is",    "that",
      "for",  "it",   "as",   "was",  "with", "be",    "by",    "on",
      "not",  "he",   "i",    "this", "are",  "or",    "his",   "from",
      "at",   "which","but",  "have", "an",   "had",   "they",  "you",
      "were", "their","one",  "all",  "we",   "can",   "her",   "has",
      "there","been", "if",   "more", "when", "will",  "would", "who",
      "so",   "no"};
  for (int i = 0; i < 950; ++i) vocab.push_back("word" + std::to_string(i));
  return vocab;
}

size_t zipf_rank(parsemi::rng& r, size_t m) {
  // Quick approximate Zipf: rank ≈ m^U.
  double u = r.next_double();
  auto rank = static_cast<size_t>(std::pow(static_cast<double>(m), u)) - 1;
  return rank < m ? rank : m - 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parsemi;
  arg_parser args(argc, argv);
  size_t docs = static_cast<size_t>(args.get_int("docs", 2000));
  if (args.has("threads")) set_num_workers(static_cast<int>(args.get_int("threads", 1)));

  auto vocab = make_vocabulary();
  constexpr size_t kWordsPerDoc = 2000;

  // --- map phase (parallel over documents) ---
  timer t;
  std::vector<std::pair<std::string, uint64_t>> emitted(docs * kWordsPerDoc);
  rng base(2718);
  parallel_for(0, docs, [&](size_t d) {
    rng r = base.split(d);
    for (size_t w = 0; w < kWordsPerDoc; ++w)
      emitted[d * kWordsPerDoc + w] = {vocab[zipf_rank(r, vocab.size())], 1};
  });
  double map_time = t.lap();

  // --- shuffle + reduce via semisort ---
  auto counts = collect_reduce(
      std::span<const std::pair<std::string, uint64_t>>(emitted),
      [](const std::string& s) { return hash_string(s); },
      [](uint64_t a, uint64_t b) { return a + b; }, uint64_t{0});
  double shuffle_time = t.lap();

  // --- validate against a sequential count ---
  std::unordered_map<std::string, uint64_t> reference;
  for (auto& [word, one] : emitted) reference[word] += one;
  double seq_time = t.lap();

  size_t mismatches = 0;
  for (auto& [word, count] : counts)
    if (reference.at(word) != count) ++mismatches;

  std::printf("word count over %zu documents (%zu pairs), %d worker(s)\n",
              docs, emitted.size(), num_workers());
  std::printf("  map:                 %.3fs\n", map_time);
  std::printf("  shuffle+reduce:      %.3fs (semisort-based)\n", shuffle_time);
  std::printf("  sequential hash map: %.3fs (reference)\n", seq_time);
  std::printf("  distinct words: %zu, mismatches vs reference: %zu\n",
              counts.size(), mismatches);

  // Top-5 words by count.
  std::sort(counts.begin(), counts.end(),
            [](auto& a, auto& b) { return a.second > b.second; });
  std::printf("  top words:");
  for (size_t i = 0; i < std::min<size_t>(5, counts.size()); ++i)
    std::printf(" %s=%llu", counts[i].first.c_str(),
                static_cast<unsigned long long>(counts[i].second));
  std::printf("\n");
  return mismatches == 0 ? 0 : 1;
}
